package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"resmod/internal/dist"
	"resmod/internal/server"
	"resmod/internal/store"
)

// serveOptions are the serve subcommand's flags, validated up front so a
// misconfigured service exits non-zero with a usable message before it
// binds the listener.
type serveOptions struct {
	listen           string
	workers          int
	queue            int
	storeDir         string
	cache            int
	trials           int
	seed             uint64
	campaignWorkers  int
	campaignParallel int
	drain            time.Duration
	pprofAddr        string
	apiKeys          string
	apiKeysFile      string
	tenantRate       float64
	tenantBurst      int
	tenantInflight   int
	anonRate         float64
	anonBurst        int
	anonInflight     int
	coordinator      bool
	heartbeatTimeout time.Duration
	shardsPerWorker  int
	sampleEvery      time.Duration
	tf               telFlags
}

// validate rejects configurations that could only fail later (or worse,
// limp along): malformed listen addresses, non-positive pool sizes.
func (o serveOptions) validate() error {
	if err := validListenAddr("-listen", o.listen); err != nil {
		return err
	}
	if o.pprofAddr != "" {
		if err := validListenAddr("-pprof-addr", o.pprofAddr); err != nil {
			return err
		}
	}
	if o.workers <= 0 {
		return fmt.Errorf("-workers must be positive, got %d", o.workers)
	}
	if o.queue <= 0 {
		return fmt.Errorf("-queue must be positive, got %d", o.queue)
	}
	if o.cache <= 0 {
		return fmt.Errorf("-cache must be positive, got %d", o.cache)
	}
	if o.trials <= 0 {
		return fmt.Errorf("-trials must be positive, got %d", o.trials)
	}
	if o.campaignWorkers < 0 {
		return fmt.Errorf("-campaign-workers must be non-negative, got %d", o.campaignWorkers)
	}
	if o.campaignParallel < 0 {
		return fmt.Errorf("-campaign-parallel must be non-negative, got %d", o.campaignParallel)
	}
	if o.drain <= 0 {
		return fmt.Errorf("-drain must be positive, got %v", o.drain)
	}
	if o.apiKeys != "" && o.apiKeysFile != "" {
		return fmt.Errorf("-api-keys and -api-keys-file are mutually exclusive")
	}
	if !o.coordinator && (o.heartbeatTimeout != DefaultServeHeartbeatTimeout ||
		o.shardsPerWorker != dist.DefaultShardsPerWorker) {
		return fmt.Errorf("-heartbeat-timeout and -shards-per-worker need -coordinator")
	}
	if o.heartbeatTimeout <= 0 {
		return fmt.Errorf("-heartbeat-timeout must be positive, got %v", o.heartbeatTimeout)
	}
	if o.shardsPerWorker <= 0 {
		return fmt.Errorf("-shards-per-worker must be positive, got %d", o.shardsPerWorker)
	}
	if o.sampleEvery <= 0 {
		return fmt.Errorf("-sample-every must be positive, got %v", o.sampleEvery)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"-tenant-rate", o.tenantRate}, {"-anon-rate", o.anonRate}} {
		if f.v < 0 {
			return fmt.Errorf("%s must be non-negative, got %v", f.name, f.v)
		}
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"-tenant-burst", o.tenantBurst}, {"-tenant-inflight", o.tenantInflight},
		{"-anon-burst", o.anonBurst}, {"-anon-inflight", o.anonInflight},
	} {
		if f.v < 0 {
			return fmt.Errorf("%s must be non-negative, got %d", f.name, f.v)
		}
	}
	return nil
}

// parseAPIKeys parses "key:tenant,key:tenant" into the server's key map.
// Tenant names must not collide with the reserved anonymous tier, and a
// key registered twice is a config bug worth failing on.
func parseAPIKeys(s string) (map[string]string, error) {
	keys := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, tenant, found := strings.Cut(part, ":")
		key, tenant = strings.TrimSpace(key), strings.TrimSpace(tenant)
		if !found || key == "" || tenant == "" {
			return nil, fmt.Errorf("api key entry %q: want KEY:TENANT", part)
		}
		if tenant == server.AnonTenant {
			return nil, fmt.Errorf("api key entry %q: tenant name %q is reserved for the anonymous tier",
				part, server.AnonTenant)
		}
		if prev, dup := keys[key]; dup {
			return nil, fmt.Errorf("api key %q registered twice (tenants %q and %q)", key, prev, tenant)
		}
		keys[key] = tenant
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("api key list %q selects nothing", s)
	}
	return keys, nil
}

// loadAPIKeysFile reads one KEY:TENANT pair per line ('#' comments and
// blank lines ignored) so keys can live outside process listings.
func loadAPIKeysFile(path string) (map[string]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entries = append(entries, line)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("%s: no KEY:TENANT entries", path)
	}
	return parseAPIKeys(strings.Join(entries, ","))
}

// validListenAddr checks a host:port flag value without resolving it.
func validListenAddr(flagName, addr string) error {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("%s %q: %v (want host:port, e.g. 127.0.0.1:8080)", flagName, addr, err)
	}
	if p, err := strconv.Atoi(port); err != nil || p < 0 || p > 65535 {
		return fmt.Errorf("%s %q: port %q is not a number in 0..65535", flagName, addr, port)
	}
	if host != "" {
		if ip := net.ParseIP(host); ip == nil && !validHostname(host) {
			return fmt.Errorf("%s %q: %q is neither an IP address nor a hostname", flagName, addr, host)
		}
	}
	return nil
}

// validHostname accepts DNS-ish names (letters, digits, '-', '.'): enough
// to catch garbage like "not an address" without resolving anything.
func validHostname(host string) bool {
	if len(host) > 253 {
		return false
	}
	for _, r := range host {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.':
		default:
			return false
		}
	}
	return true
}

// DefaultServeHeartbeatTimeout is the serve -heartbeat-timeout default
// (it mirrors dist.DefaultHeartbeatTimeout; named so validate can tell
// "left at default" from "set without -coordinator").
const DefaultServeHeartbeatTimeout = dist.DefaultHeartbeatTimeout

// doServe runs the prediction service until ctx is canceled (SIGINT or
// SIGTERM from main), then drains gracefully.
func doServe(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(errw)
	var o serveOptions
	fs.StringVar(&o.listen, "listen", "127.0.0.1:8080", "host:port to bind")
	fs.IntVar(&o.workers, "workers", 2, "concurrent prediction jobs")
	fs.IntVar(&o.queue, "queue", 64, "max queued (accepted, unstarted) jobs")
	fs.StringVar(&o.storeDir, "store", "", "result-store directory (empty: memory only)")
	fs.IntVar(&o.cache, "cache", store.DefaultMaxEntries, "in-memory LRU capacity of the store")
	fs.IntVar(&o.trials, "trials", 400, "fault injection tests per campaign (paper: 4000)")
	fs.Uint64Var(&o.seed, "seed", 2018, "campaign seed")
	fs.IntVar(&o.campaignWorkers, "campaign-workers", 0, "trial-level concurrency (default GOMAXPROCS)")
	fs.IntVar(&o.campaignParallel, "campaign-parallel", 0,
		"concurrent campaigns per prediction job (default GOMAXPROCS; 1 = sequential)")
	fs.DurationVar(&o.drain, "drain", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
	fs.StringVar(&o.pprofAddr, "pprof-addr", "", "host:port for a net/http/pprof listener (empty: disabled)")
	fs.StringVar(&o.apiKeys, "api-keys", "", "inline API keys: KEY:TENANT,KEY:TENANT,...")
	fs.StringVar(&o.apiKeysFile, "api-keys-file", "",
		"`file` of KEY:TENANT lines ('#' comments allowed); exclusive with -api-keys")
	fs.Float64Var(&o.tenantRate, "tenant-rate", 0,
		"sustained submissions/sec per keyed tenant (0 = unlimited)")
	fs.IntVar(&o.tenantBurst, "tenant-burst", 0,
		"submission burst per keyed tenant (0 = derived from -tenant-rate)")
	fs.IntVar(&o.tenantInflight, "tenant-inflight", 0,
		"max queued+running jobs per keyed tenant (0 = unlimited)")
	fs.Float64Var(&o.anonRate, "anon-rate", 0,
		"sustained submissions/sec for the anonymous tier (0 = unlimited)")
	fs.IntVar(&o.anonBurst, "anon-burst", 0,
		"submission burst for the anonymous tier (0 = derived from -anon-rate)")
	fs.IntVar(&o.anonInflight, "anon-inflight", 0,
		"max queued+running anonymous jobs (0 = unlimited)")
	fs.BoolVar(&o.coordinator, "coordinator", false,
		"act as a distributed-execution coordinator: accept resmod worker registrations and shard campaigns across them")
	fs.DurationVar(&o.heartbeatTimeout, "heartbeat-timeout", DefaultServeHeartbeatTimeout,
		"declare a worker dead after this long without a heartbeat (needs -coordinator)")
	fs.IntVar(&o.shardsPerWorker, "shards-per-worker", dist.DefaultShardsPerWorker,
		"trial-range chunks per alive worker when sharding a campaign (needs -coordinator)")
	fs.DurationVar(&o.sampleEvery, "sample-every", 10*time.Second,
		"telemetry sampling period for /v1/series retention and alert evaluation")
	o.tf.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}
	if err := o.validate(); err != nil {
		return fmt.Errorf("serve: %w", err)
	}

	rt := o.tf.setup(errw)
	cfg := server.Config{
		Trials: o.trials, Seed: o.seed,
		Workers: o.workers, Queue: o.queue,
		CampaignWorkers:  o.campaignWorkers,
		CampaignParallel: o.campaignParallel,
		SampleEvery:      o.sampleEvery,
		Logger:           rt.tel.Logger(),
		Tracer:           rt.tracer,
		TenantLimits: server.TenantLimits{
			Rate: o.tenantRate, Burst: o.tenantBurst, MaxInflight: o.tenantInflight,
		},
		AnonLimits: server.TenantLimits{
			Rate: o.anonRate, Burst: o.anonBurst, MaxInflight: o.anonInflight,
		},
	}
	switch {
	case o.apiKeys != "":
		keys, err := parseAPIKeys(o.apiKeys)
		if err != nil {
			return fmt.Errorf("serve: -api-keys: %w", err)
		}
		cfg.APIKeys = keys
	case o.apiKeysFile != "":
		keys, err := loadAPIKeysFile(o.apiKeysFile)
		if err != nil {
			return fmt.Errorf("serve: -api-keys-file: %w", err)
		}
		cfg.APIKeys = keys
	}
	if o.storeDir != "" {
		st, err := store.Open(store.Config{Dir: o.storeDir, MaxEntries: o.cache})
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		cfg.Store = st
	}
	if o.coordinator {
		cfg.DistPool = dist.NewPool(dist.PoolConfig{
			HeartbeatTimeout: o.heartbeatTimeout,
			ShardsPerWorker:  o.shardsPerWorker,
		})
	}

	stopPprof, err := startPprof(o.pprofAddr, rt.tel.Logger())
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	defer stopPprof()

	srv := server.New(cfg)
	err = srv.ListenAndServe(ctx, o.listen, o.drain)
	if ferr := rt.finish(errw); ferr != nil && err == nil {
		err = ferr
	}
	return err
}
