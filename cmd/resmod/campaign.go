package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"resmod/internal/apps"
	"resmod/internal/faultsim"
	"resmod/internal/fpe"
	"resmod/internal/stats"
)

// campaignOptions are the knobs of one custom deployment.
type campaignOptions struct {
	app         string
	class       string
	procs       int
	trials      int
	errors      int
	seed        uint64
	region      string
	pattern     string
	kinds       string
	bit         int
	spread      bool
	winLo       float64
	winHi       float64
	tol         float64
	workers     int
	json        bool
	budget      time.Duration
	maxAbnormal int
	retries     int
	checkpoint  string
	ckptEvery   time.Duration
	resume      bool
}

// doCampaign runs a single fully-configurable fault injection deployment —
// the CLI surface over faultsim.Campaign.
func doCampaign(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	fs.SetOutput(errw)
	var o campaignOptions
	var tf telFlags
	tf.register(fs)
	fs.StringVar(&o.app, "app", "CG", "benchmark")
	fs.StringVar(&o.class, "class", "", "problem class (default: app default)")
	fs.IntVar(&o.procs, "procs", 8, "rank count")
	fs.IntVar(&o.trials, "trials", 400, "fault injection tests")
	fs.IntVar(&o.errors, "errors", 1, "simultaneous errors per test")
	fs.BoolVar(&o.spread, "spread", false, "distribute the errors across distinct ranks")
	fs.Uint64Var(&o.seed, "seed", 1, "seed")
	fs.StringVar(&o.region, "region", "any", "injection region: any, common, unique")
	fs.StringVar(&o.pattern, "pattern", "single", "fault pattern: single, double, burst4, word")
	fs.StringVar(&o.kinds, "kinds", "", "restrict op kinds: add, mul, or empty for any")
	fs.IntVar(&o.bit, "bit", -1, "pin the flipped bit (single-bit pattern); -1 = random")
	fs.Float64Var(&o.winLo, "window-lo", 0, "injection window start fraction")
	fs.Float64Var(&o.winHi, "window-hi", 1, "injection window end fraction")
	fs.Float64Var(&o.tol, "contamination-tol", 0, "contamination tolerance (0 = default, <0 = bit-exact)")
	fs.IntVar(&o.workers, "workers", 0, "trial concurrency")
	fs.BoolVar(&o.json, "json", false, "emit JSON")
	fs.DurationVar(&o.budget, "budget", 0, "campaign wall-clock budget (0 = none)")
	fs.IntVar(&o.maxAbnormal, "max-abnormal", 0, "abnormal (harness-error) trials tolerated before failing")
	fs.IntVar(&o.retries, "retries", 0, "retries per abnormal trial (0 = default, <0 = none)")
	fs.StringVar(&o.checkpoint, "checkpoint", "", "periodic JSON snapshot file (enables resumability)")
	fs.DurationVar(&o.ckptEvery, "checkpoint-every", 0, "snapshot period (default 5s)")
	fs.BoolVar(&o.resume, "resume", false, "resume from -checkpoint if it exists")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if o.resume && o.checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}

	app, err := apps.Lookup(o.app)
	if err != nil {
		return err
	}
	c := faultsim.Campaign{
		App: app, Class: o.class, Procs: o.procs, Trials: o.trials,
		Errors: o.errors, Seed: o.seed, Workers: o.workers,
		SpreadErrors: o.spread, ContaminationTol: o.tol,
		Budget: o.budget, MaxAbnormal: o.maxAbnormal, AbnormalRetries: o.retries,
		Checkpoint: o.checkpoint, CheckpointEvery: o.ckptEvery, Resume: o.resume,
	}
	switch strings.ToLower(o.region) {
	case "", "any":
		c.Region = faultsim.AnyRegion
	case "common":
		c.Region = faultsim.CommonOnly
	case "unique":
		c.Region = faultsim.UniqueOnly
	default:
		return fmt.Errorf("unknown region %q", o.region)
	}
	switch strings.ToLower(o.pattern) {
	case "", "single":
		c.Pattern = fpe.SingleBit
	case "double":
		c.Pattern = fpe.DoubleBit
	case "burst4":
		c.Pattern = fpe.Burst4
	case "word":
		c.Pattern = fpe.WordRandom
	default:
		return fmt.Errorf("unknown pattern %q", o.pattern)
	}
	switch strings.ToLower(o.kinds) {
	case "":
	case "add":
		c.KindMask = 1<<uint(fpe.OpAdd) | 1<<uint(fpe.OpSub)
	case "mul":
		c.KindMask = 1 << uint(fpe.OpMul)
	default:
		return fmt.Errorf("unknown kind restriction %q", o.kinds)
	}
	if o.bit >= 0 {
		b := uint(o.bit)
		c.FixedBit = &b
	}
	if o.winLo != 0 || o.winHi != 1 {
		win := [2]float64{o.winLo, o.winHi}
		c.Window = &win
	}

	rt := tf.setup(errw)
	tctx, root := rt.context(ctx, "resmod campaign")
	start := time.Now()
	sum, err := faultsim.RunCtx(tctx, c)
	root.End()
	if ferr := rt.finish(errw); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	if o.json {
		type result struct {
			Rates        any
			CI95         stats.RateIntervals
			Hist         []uint64
			UniqueFrac   float64
			AvgFired     float64
			Elapsed      time.Duration
			CommMessages uint64
			TrialsDone   uint64
			Abnormal     uint64
			Interrupted  bool
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(result{
			Rates: sum.Rates, CI95: sum.Rates.Intervals95(), Hist: sum.Hist.Counts,
			UniqueFrac: sum.Golden.UniqueFraction(), AvgFired: sum.AvgFired,
			Elapsed: sum.Elapsed, CommMessages: sum.Golden.Comm.Messages,
			TrialsDone: sum.TrialsDone, Abnormal: sum.Abnormal,
			Interrupted: sum.Interrupted,
		})
	}
	fmt.Fprintf(out, "deployment: %s/%s procs=%d trials=%d errors=%d region=%s pattern=%s\n",
		app.Name(), sum.Golden.Class, o.procs, o.trials, o.errors, o.region, o.pattern)
	if sum.Interrupted {
		fmt.Fprintf(out, "INTERRUPTED: %d/%d trials completed; partial results below\n",
			sum.TrialsDone, o.trials)
		if o.checkpoint != "" {
			fmt.Fprintf(out, "checkpoint saved to %s — re-run with -resume to continue\n",
				o.checkpoint)
		}
	}
	if sum.Abnormal > 0 {
		fmt.Fprintf(out, "abnormal trials: %d (excluded from rates; confidence degraded)\n",
			sum.Abnormal)
	}
	fmt.Fprintf(out, "result: %s\n", sum.Rates)
	iv := sum.Rates.Intervals95()
	fmt.Fprintln(out, "convergence (Wilson 95% CI):")
	for _, row := range []struct {
		name string
		iv   stats.Interval
	}{
		{"success", iv.Success}, {"sdc", iv.SDC}, {"failure", iv.Failure},
	} {
		fmt.Fprintf(out, "  %-8s %5.1f%% - %5.1f%%  (width %.2f pp)\n",
			row.name, 100*row.iv.Lo, 100*row.iv.Hi, 100*row.iv.Width())
	}
	fmt.Fprintln(out, "propagation histogram (non-zero bins):")
	probs := sum.Hist.Probabilities()
	for x, p := range probs {
		if p == 0 {
			continue
		}
		fmt.Fprintf(out, "  %3d rank(s): %5.1f%%\n", x+1, 100*p)
	}
	if o.procs > 1 {
		fmt.Fprintln(out, "contamination by ring distance from the injected rank:")
		for d, cnt := range sum.SpreadByDistance {
			if cnt == 0 {
				continue
			}
			fmt.Fprintf(out, "  distance %d: %d rank-hits\n", d, cnt)
		}
	}
	fmt.Fprintf(out, "avg injections fired per test: %.2f\n", sum.AvgFired)
	fmt.Fprintf(out, "elapsed: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
