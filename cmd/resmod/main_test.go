package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd executes the CLI entry point with tiny workloads.
func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	var out, errw bytes.Buffer
	if err := run(context.Background(), args, &out, &errw); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, errw.String())
	}
	return out.String()
}

func TestUnknownCommand(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(context.Background(), []string{"nope"}, &out, &errw); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run(context.Background(), nil, &out, &errw); err == nil {
		t.Fatal("missing command accepted")
	}
}

func TestAppsCommand(t *testing.T) {
	got := runCmd(t, "apps")
	for _, want := range []string{"CG", "FT", "MG", "LU", "MiniFE", "PENNANT"} {
		if !strings.Contains(got, want) {
			t.Fatalf("apps output missing %s:\n%s", want, got)
		}
	}
}

func TestOverheadCommand(t *testing.T) {
	got := runCmd(t, "overhead", "-quiet")
	if !strings.Contains(got, "serial ops") || !strings.Contains(got, "4-rank ops") {
		t.Fatalf("overhead output:\n%s", got)
	}
}

func TestTable1Command(t *testing.T) {
	got := runCmd(t, "table1", "-quiet")
	if !strings.Contains(got, "FT (S)") || !strings.Contains(got, "No parallel-unique comp") {
		t.Fatalf("table1 output:\n%s", got)
	}
}

func TestPredictCommandSmall(t *testing.T) {
	got := runCmd(t, "predict", "-quiet", "-trials", "8",
		"-app", "PENNANT", "-small", "2", "-large", "4")
	if !strings.Contains(got, "average error") {
		t.Fatalf("predict output:\n%s", got)
	}
}

func TestTraceCommand(t *testing.T) {
	got := runCmd(t, "trace", "-quiet", "-trials", "1", "-app", "PENNANT", "-small", "2")
	if !strings.Contains(got, "outcome:") || !strings.Contains(got, "golden:") {
		t.Fatalf("trace output:\n%s", got)
	}
}

func TestStabilityCommand(t *testing.T) {
	got := runCmd(t, "stability", "-quiet", "-trials", "16", "-app", "PENNANT", "-small", "1")
	if !strings.Contains(got, "95% CI") {
		t.Fatalf("stability output:\n%s", got)
	}
}

func TestSplitApps(t *testing.T) {
	got := splitApps(" CG , FT ,,LU ")
	want := []string{"CG", "FT", "LU"}
	if len(got) != len(want) {
		t.Fatalf("splitApps = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitApps = %v", got)
		}
	}
	if splitApps("") != nil {
		t.Fatal("empty split not nil")
	}
}

func TestTable1JSON(t *testing.T) {
	got := runCmd(t, "table1", "-quiet", "-json")
	if !strings.Contains(got, `"Bench": "CG"`) || !strings.Contains(got, `"UniqueFraction"`) {
		t.Fatalf("json output:\n%s", got)
	}
}

func TestCampaignCommand(t *testing.T) {
	got := runCmd(t, "campaign", "-app", "PENNANT", "-procs", "2", "-trials", "10",
		"-pattern", "double", "-kinds", "mul", "-window-lo", "0.2", "-window-hi", "0.8")
	if !strings.Contains(got, "propagation histogram") || !strings.Contains(got, "95% CI") {
		t.Fatalf("campaign output:\n%s", got)
	}
}

func TestCampaignCommandJSON(t *testing.T) {
	got := runCmd(t, "campaign", "-app", "PENNANT", "-procs", "1", "-trials", "5", "-json")
	if !strings.Contains(got, `"Hist"`) || !strings.Contains(got, `"AvgFired"`) {
		t.Fatalf("campaign json:\n%s", got)
	}
}

func TestCampaignCheckpointResume(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "ck.json")
	first := runCmd(t, "campaign", "-app", "PENNANT", "-procs", "2", "-trials", "8",
		"-checkpoint", ck)
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	// The checkpoint records all 8 trials done, so the resumed run replays
	// the tallies without re-executing and must print identical results.
	second := runCmd(t, "campaign", "-app", "PENNANT", "-procs", "2", "-trials", "8",
		"-checkpoint", ck, "-resume")
	if got, want := resultLine(t, second), resultLine(t, first); got != want {
		t.Fatalf("resumed result differs:\nfirst:  %s\nsecond: %s", want, got)
	}
}

// resultLine extracts the "result:" line of a campaign's text output.
func resultLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "result:") {
			return line
		}
	}
	t.Fatalf("no result line in output:\n%s", out)
	return ""
}

func TestCampaignCommandValidation(t *testing.T) {
	ctx := context.Background()
	var out, errw bytes.Buffer
	if err := run(ctx, []string{"campaign", "-region", "bogus"}, &out, &errw); err == nil {
		t.Fatal("bogus region accepted")
	}
	if err := run(ctx, []string{"campaign", "-pattern", "bogus"}, &out, &errw); err == nil {
		t.Fatal("bogus pattern accepted")
	}
	if err := run(ctx, []string{"campaign", "-kinds", "bogus"}, &out, &errw); err == nil {
		t.Fatal("bogus kinds accepted")
	}
	if err := run(ctx, []string{"campaign", "-resume"}, &out, &errw); err == nil {
		t.Fatal("-resume without -checkpoint accepted")
	}
}
