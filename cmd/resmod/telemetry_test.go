package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCampaignTraceFlag runs a tiny campaign with -trace and checks the
// emitted file is a well-formed Chrome trace with the expected spans.
func TestCampaignTraceFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	runCmd(t, "campaign", "-app", "PENNANT", "-procs", "2", "-trials", "4",
		"-quiet", "-trace", path)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, data)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("span %s has ph %q, want X", ev.Name, ev.Ph)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"resmod campaign", "golden", "campaign", "trial-batch"} {
		if !names[want] {
			t.Fatalf("trace missing %q span; got %v", want, names)
		}
	}
}

// TestVerboseAndSummary checks -v opens debug events and that a
// non-quiet campaign prints the telemetry summary block to stderr.
func TestVerboseAndSummary(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"campaign", "-app", "PENNANT", "-procs", "2", "-trials", "4", "-v"}
	if err := run(context.Background(), args, &out, &errw); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, errw.String())
	}
	logs := errw.String()
	if !strings.Contains(logs, "DEBUG golden run complete") {
		t.Fatalf("-v did not surface debug events:\n%s", logs)
	}
	if !strings.Contains(logs, "== telemetry ==") || !strings.Contains(logs, "trials:      4") {
		t.Fatalf("telemetry summary missing:\n%s", logs)
	}
}

// TestQuietSuppressesSummary checks -quiet drops info events and the
// summary block (warnings would still pass).
func TestQuietSuppressesSummary(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"campaign", "-app", "PENNANT", "-procs", "2", "-trials", "4", "-quiet"}
	if err := run(context.Background(), args, &out, &errw); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, errw.String())
	}
	logs := errw.String()
	if strings.Contains(logs, "== telemetry ==") {
		t.Fatalf("-quiet still printed the summary:\n%s", logs)
	}
	if strings.Contains(logs, "INFO") {
		t.Fatalf("-quiet still printed info events:\n%s", logs)
	}
}

// TestExperimentTraceFlag checks -trace on an experiment subcommand.
func TestExperimentTraceFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	runCmd(t, "overhead", "-quiet", "-trace", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	if !names["resmod overhead"] || !names["golden"] {
		t.Fatalf("experiment trace spans = %v", names)
	}
}
