package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"resmod/internal/dist"
	"resmod/internal/server"
)

// TestTopFlagValidation: misconfigurations fail before any request is
// sent, naming the bad flag.
func TestTopFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-target", ""}, "-target"},
		{[]string{"-target", "ftp://x"}, "-target"},
		{[]string{"-interval", "0s"}, "-interval"},
		{[]string{"extra"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		var out, errw bytes.Buffer
		err := run(context.Background(), append([]string{"top"}, tc.args...), &out, &errw)
		if err == nil {
			t.Errorf("top %v accepted", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("top %v error %q does not name %q", tc.args, err, tc.want)
		}
	}
}

// TestTopOnceFrame renders a single frame against a real coordinator
// server and checks every dashboard section appears: header, queue,
// alerts, sparklines, and the fleet table with the registered worker.
func TestTopOnceFrame(t *testing.T) {
	pool := dist.NewPool(dist.PoolConfig{HeartbeatTimeout: time.Minute})
	srv := server.New(server.Config{
		Trials: 5, Seed: 42, Workers: 1, Queue: 8,
		SampleEvery: 5 * time.Millisecond,
		DistPool:    pool,
	})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		_ = srv.Close(context.Background())
	})
	id := pool.Register("w1", "http://127.0.0.1:1")
	pool.Heartbeat(id, nil)
	time.Sleep(30 * time.Millisecond) // a few sampler ticks populate /v1/series

	var out, errw bytes.Buffer
	if err := run(context.Background(), []string{"top",
		"-target", hs.URL, "-once"}, &out, &errw); err != nil {
		t.Fatalf("top -once: %v\nstderr: %s", err, errw.String())
	}
	frame := out.String()
	for _, want := range []string{
		"resmod top", "queue [", "alerts:", "trials/s", "fleet: 1/1 workers alive", "w1",
	} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}
	if strings.Contains(frame, "\x1b[") {
		t.Fatalf("non-TTY frame contains ANSI escapes:\n%s", frame)
	}
}

// TestTopOnceUnreachable: -once against a dead target is an error, not
// a silent empty frame.
func TestTopOnceUnreachable(t *testing.T) {
	var out, errw bytes.Buffer
	err := run(context.Background(), []string{"top",
		"-target", "http://127.0.0.1:1", "-once"}, &out, &errw)
	if err == nil {
		t.Fatal("top -once against a dead target succeeded")
	}
}

// TestSparkline pins the ASCII sparkline: width, right-alignment, and
// min/max mapping to the quietest/loudest glyphs.
func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 8); got != strings.Repeat(" ", 8) {
		t.Fatalf("empty sparkline = %q", got)
	}
	got := sparkline([]float64{0, 1, 2, 3}, 8)
	if len(got) != 8 {
		t.Fatalf("sparkline width = %d, want 8", len(got))
	}
	if !strings.HasPrefix(got, "    ") {
		t.Fatalf("short series not right-aligned: %q", got)
	}
	if got[4] != ' ' || got[7] != '#' {
		t.Fatalf("min/max glyphs wrong: %q", got)
	}
	// Longer than width keeps the newest points.
	long := make([]float64, 100)
	long[99] = 5
	got = sparkline(long, 10)
	if len(got) != 10 || got[9] != '#' {
		t.Fatalf("truncated sparkline = %q", got)
	}
	// A flat series renders at the quiet level rather than dividing by zero.
	if got := sparkline([]float64{2, 2, 2}, 3); got != "   " {
		t.Fatalf("flat sparkline = %q", got)
	}
}
