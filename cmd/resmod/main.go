// Command resmod runs the resilience-modeling experiments that regenerate
// the tables and figures of "Modeling Application Resilience in
// Large-scale Parallel Execution" (ICPP 2018) on resmod's simulated
// substrate.
//
// Usage:
//
//	resmod <experiment> [flags]
//
// Experiments:
//
//	apps      list the registered benchmark applications
//	table1    parallel-unique computation fractions
//	table2    propagation cosine similarity (4V64, 8V64)
//	fig1      CG propagation histograms (8 vs 64 ranks)
//	fig2      FT propagation histograms (8 vs 64 ranks)
//	fig3      serial-vs-parallel resilience characterization (8 ranks)
//	fig5      prediction for 64 ranks from serial + 4 ranks
//	fig6      prediction for 64 ranks from serial + 8 ranks
//	fig7      prediction for 128 ranks (CG, FT)
//	fig8      accuracy/cost sweep over small-scale sizes 4..32
//	overhead  instruction-count growth from serial to 4 ranks (§1)
//	predict   one custom prediction: -app, -small, -large
//	all       every experiment above, in order
//	serve     long-running prediction service (HTTP JSON API + /metrics);
//	          -coordinator shards campaigns across registered workers
//	worker    distributed execution node: registers with a coordinator and
//	          executes dispatched trial-range shards
//	loadgen   load-generation harness for a running serve instance
//	top       live terminal dashboard for a running serve instance
//	          (status, alerts, sparklines, fleet)
//
// Common flags: -trials, -seed, -apps, -workers, and the observability
// trio every subcommand shares: -quiet (warnings only), -v (debug),
// -trace FILE (Chrome trace-event JSON of the run's spans).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"resmod/internal/apps"
	"resmod/internal/exper"

	_ "resmod/internal/apps/cg"
	_ "resmod/internal/apps/cg2d"
	_ "resmod/internal/apps/ep"
	_ "resmod/internal/apps/ft"
	_ "resmod/internal/apps/lu"
	_ "resmod/internal/apps/mg"
	_ "resmod/internal/apps/minife"
	_ "resmod/internal/apps/pennant"
	_ "resmod/internal/apps/sp"
)

func main() {
	// First SIGINT/SIGTERM cancels the context: campaigns stop promptly,
	// flush their checkpoints, and report partial progress.  A second
	// signal kills the process (signal.NotifyContext restores default
	// handling once the context is canceled).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "resmod:", err)
		os.Exit(1)
	}
}

type options struct {
	trials           int
	seed             uint64
	apps             string
	quiet            bool
	workers          int
	campaignParallel int
	app              string
	class            string
	small            int
	large            int
	json             bool
	budget           time.Duration
	benchOut         string
	maxprocs         int
	distWorkers      int
}

// emit renders v as JSON when -json is set and returns true.
func (o options) emit(out io.Writer, v any) bool {
	if !o.json {
		return false
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(out, "{}")
	}
	return true
}

func run(ctx context.Context, args []string, out, errw io.Writer) error {
	if len(args) == 0 {
		usage(errw)
		return fmt.Errorf("an experiment name is required")
	}
	cmd := args[0]
	if cmd == "campaign" {
		return doCampaign(ctx, args[1:], out, errw)
	}
	if cmd == "serve" {
		return doServe(ctx, args[1:], out, errw)
	}
	if cmd == "loadgen" {
		return doLoadgen(ctx, args[1:], out, errw)
	}
	if cmd == "worker" {
		return doWorker(ctx, args[1:], out, errw)
	}
	if cmd == "top" {
		return doTop(ctx, args[1:], out, errw)
	}
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(errw)
	var o options
	var tf telFlags
	tf.register(fs)
	fs.IntVar(&o.trials, "trials", 400, "fault injection tests per deployment (paper: 4000)")
	fs.Uint64Var(&o.seed, "seed", 2018, "campaign seed")
	fs.StringVar(&o.apps, "apps", "", "comma-separated benchmark subset (default: all)")
	fs.IntVar(&o.workers, "workers", 0, "trial-level concurrency (default GOMAXPROCS)")
	fs.IntVar(&o.campaignParallel, "campaign-parallel", 0,
		"concurrent campaigns (default GOMAXPROCS; 1 = sequential)")
	fs.StringVar(&o.app, "app", "CG", "benchmark for the predict experiment")
	fs.StringVar(&o.class, "class", "", "problem class (default: app default)")
	fs.IntVar(&o.small, "small", 8, "small-scale rank count for predict")
	fs.IntVar(&o.large, "large", 64, "large-scale rank count for predict")
	fs.BoolVar(&o.json, "json", false, "emit machine-readable JSON instead of tables")
	fs.DurationVar(&o.budget, "budget", 0, "per-campaign wall-clock budget (0 = none)")
	fs.StringVar(&o.benchOut, "out", "", "bench: output JSON `file` (required)")
	fs.IntVar(&o.maxprocs, "maxprocs", 0, "bench: GOMAXPROCS for the measured runs (0 = all cores)")
	fs.IntVar(&o.distWorkers, "dist-workers", 2,
		"bench: in-process distributed workers for the sharded dimension (0 = skip)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	o.quiet = tf.quiet

	rt := tf.setup(errw)
	tctx, root := rt.context(ctx, "resmod "+cmd)
	s := exper.NewSession(exper.Config{
		Trials: o.trials, Seed: o.seed, Workers: o.workers,
		CampaignParallel: o.campaignParallel,
		Ctx:              tctx, Budget: o.budget,
	})
	names := splitApps(o.apps)

	start := time.Now()
	var err error
	switch cmd {
	case "apps":
		err = listApps(out)
	case "table1":
		err = doTable1(s, out, o)
	case "table2":
		err = doTable2(s, out, names, o)
	case "fig1":
		err = doPropagation(s, out, "CG")
	case "fig2":
		err = doPropagation(s, out, "FT")
	case "fig3":
		err = doFig3(s, out, names)
	case "fig5":
		err = doPredict(s, out, names, 4, 64, o)
	case "fig6":
		err = doPredict(s, out, names, 8, 64, o)
	case "fig7":
		err = doFig7(s, out)
	case "fig8":
		err = doFig8(s, out, names, o)
	case "overhead":
		err = doOverhead(s, out)
	case "predict":
		err = doPredictOne(s, out, o)
	case "all":
		err = doAll(s, out, names)
	case "report":
		err = exper.Report(s, out)
	case "ablate":
		err = doAblate(o, out)
	case "baselines":
		err = doBaselines(s, out, names, o)
	case "modelablate":
		err = doModelAblate(s, out, o)
	case "scalesweep":
		err = doScaleSweep(s, out, o)
	case "advise":
		err = doAdvise(o, out)
	case "trace":
		err = doTrace(o, out)
	case "stability":
		err = doStability(s, o, out)
	case "bench":
		err = doBench(tctx, o, out, errw)
	default:
		usage(errw)
		return fmt.Errorf("unknown experiment %q", cmd)
	}
	root.End()
	if ferr := rt.finish(errw); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	if !o.quiet {
		fmt.Fprintf(errw, "[%s done in %v]\n", cmd, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: resmod <experiment> [flags]
experiments: apps table1 table2 fig1 fig2 fig3 fig5 fig6 fig7 fig8 overhead predict all report
extras:      campaign ablate trace stability baselines modelablate scalesweep advise
             bench (sequential-vs-concurrent PredictAll wall times -> -out FILE,
             required)
             (use -app, -class, -small, -large)
service:     serve -listen HOST:PORT -store DIR -workers N -queue N -drain D
             -pprof-addr HOST:PORT (optional net/http/pprof listener)
             -api-keys KEY:TENANT,... or -api-keys-file FILE (tenancy)
             -tenant-rate/-tenant-burst/-tenant-inflight (keyed limits)
             -anon-rate/-anon-burst/-anon-inflight (anonymous-tier limits)
             -coordinator (shard campaigns across registered workers)
             -heartbeat-timeout D -shards-per-worker N (coordinator tuning)
             -sample-every D (telemetry retention/alerting cadence)
worker:      worker -coordinator URL -listen HOST:PORT -advertise URL
             -name NAME -campaign-workers N -heartbeat D
             -pprof-addr HOST:PORT (optional net/http/pprof listener;
             shard endpoint also serves GET /metrics)
loadgen:     loadgen -target URL -clients N -duration D -mix predict=60,get=25,...
             -keys KEY,... -priorities normal=80,... -retries N -out FILE
             -fail-on-5xx (non-zero exit on any 5xx other than a drain 503)
top:         top -target URL -interval D -once (live dashboard: status,
             alerts, series sparklines, fleet; also see GET /debug/dash)
flags: -trials N -seed N -apps CG,FT,... -workers N -campaign-parallel N -budget D
       -quiet (warnings only) -v (debug) -trace FILE (Chrome trace JSON)
       (predict only) -app NAME -class C -small S -large P
       (campaign only) -checkpoint FILE -resume -max-abnormal N -retries N
SIGINT/SIGTERM stops campaigns promptly, preserving partial results
(and the checkpoint, when one is configured).`)
}

func splitApps(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func listApps(out io.Writer) error {
	for _, name := range apps.Names() {
		a, err := apps.Lookup(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-10s classes=%v default=%s maxprocs=%d\n",
			a.Name(), a.Classes(), a.DefaultClass(), a.MaxProcs(a.DefaultClass()))
	}
	return nil
}

func doTable1(s *exper.Session, out io.Writer, o options) error {
	rows, err := exper.Table1(s)
	if err != nil {
		return err
	}
	if o.emit(out, rows) {
		return nil
	}
	fmt.Fprintln(out, "== Table 1: percentage of parallel-unique computation (4 ranks) ==")
	exper.RenderTable1(out, rows)
	return nil
}

func doTable2(s *exper.Session, out io.Writer, names []string, o options) error {
	rows, err := exper.Table2(s, names)
	if err != nil {
		return err
	}
	if o.emit(out, rows) {
		return nil
	}
	fmt.Fprintln(out, "== Table 2: propagation cosine similarity ==")
	exper.RenderTable2(out, rows)
	return nil
}

func doPropagation(s *exper.Session, out io.Writer, app string) error {
	r, err := exper.Propagation(s, app, 8, 64)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "== Figure %s: %s propagation profiles ==\n", map[string]string{
		"CG": "1", "FT": "2"}[app], app)
	exper.RenderPropagation(out, r)
	return nil
}

func doFig3(s *exper.Session, out io.Writer, names []string) error {
	if len(names) == 0 {
		names = exper.PaperBenchmarks
	}
	fmt.Fprintln(out, "== Figure 3: serial x errors vs parallel x contaminated (8 ranks) ==")
	for _, n := range names {
		r, err := exper.Fig3(s, n, 8)
		if err != nil {
			return err
		}
		exper.RenderFig3(out, r)
	}
	return nil
}

func doPredict(s *exper.Session, out io.Writer, names []string, small, large int, o options) error {
	rows, err := exper.PredictAll(s, names, small, large)
	if err != nil {
		return err
	}
	if o.emit(out, rows) {
		return nil
	}
	fig := "5"
	if small == 8 {
		fig = "6"
	}
	fmt.Fprintf(out, "== Figure %s: modeling accuracy ==\n", fig)
	exper.RenderPredictions(out, rows)
	return nil
}

func doFig7(s *exper.Session, out io.Writer) error {
	fmt.Fprintln(out, "== Figure 7: modeling accuracy for 128 ranks (CG, FT) ==")
	// FT's class S transpose supports up to 64 ranks; class B covers 128
	// (see DESIGN.md).
	configs := []struct {
		app, class string
		small      int
	}{
		{"CG", "S", 4}, {"CG", "S", 8},
		{"FT", "B", 4}, {"FT", "B", 8},
	}
	var rows []exper.PredictionRow
	for _, c := range configs {
		row, err := exper.PredictOne(s, c.app, c.class, c.small, 128)
		if err != nil {
			return err
		}
		rows = append(rows, *row)
	}
	exper.RenderPredictions(out, rows)
	return nil
}

func doFig8(s *exper.Session, out io.Writer, names []string, o options) error {
	points, err := exper.Fig8(s, names, []int{4, 8, 16, 32}, 64)
	if err != nil {
		return err
	}
	if o.emit(out, points) {
		return nil
	}
	fmt.Fprintln(out, "== Figure 8: accuracy vs fault-injection time ==")
	exper.RenderFig8(out, points)
	return nil
}

func doOverhead(s *exper.Session, out io.Writer) error {
	cg, err := apps.Lookup("CG")
	if err != nil {
		return err
	}
	ser, err := s.Golden(cg, "S", 1)
	if err != nil {
		return err
	}
	par, err := s.Golden(cg, "S", 4)
	if err != nil {
		return err
	}
	serOps := ser.TotalCounts().Total()
	parOps := par.TotalCounts().Total()
	fmt.Fprintln(out, "== §1 anecdote: CG instruction growth, serial -> 4 ranks ==")
	fmt.Fprintf(out, "serial ops:   %d\n", serOps)
	fmt.Fprintf(out, "4-rank ops:   %d (+%.1f%%)\n", parOps,
		100*(float64(parOps)/float64(serOps)-1))
	fmt.Fprintf(out, "serial time:  %v\n", ser.Elapsed.Round(time.Microsecond))
	fmt.Fprintf(out, "4-rank time:  %v (+%.1f%%)\n", par.Elapsed.Round(time.Microsecond),
		100*(float64(par.Elapsed)/float64(ser.Elapsed)-1))
	return nil
}

func doPredictOne(s *exper.Session, out io.Writer, o options) error {
	row, err := exper.PredictOne(s, o.app, o.class, o.small, o.large)
	if err != nil {
		return err
	}
	exper.RenderPredictions(out, []exper.PredictionRow{*row})
	return nil
}

func doAll(s *exper.Session, out io.Writer, names []string) error {
	steps := []func() error{
		func() error { return doOverhead(s, out) },
		func() error { return doTable1(s, out, options{}) },
		func() error { return doTable2(s, out, names, options{}) },
		func() error { return doPropagation(s, out, "CG") },
		func() error { return doPropagation(s, out, "FT") },
		func() error { return doFig3(s, out, names) },
		func() error { return doPredict(s, out, names, 4, 64, options{}) },
		func() error { return doPredict(s, out, names, 8, 64, options{}) },
		func() error { return doFig7(s, out) },
		func() error { return doFig8(s, out, names, options{}) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}
