package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// resmod top is the terminal half of the operator surface: it polls a
// running serve instance's read-only JSON endpoints (/v1/status,
// /v1/alerts, /v1/cluster, /v1/series) and renders one live dashboard
// frame per interval — in-place ANSI redraw on a TTY, rate-limited
// plain frames off it.  It is a pure client: everything it shows can be
// read with curl against the same endpoints.

type topOptions struct {
	target   string
	interval time.Duration
	once     bool
}

func (o topOptions) validate() error {
	if o.target == "" {
		return fmt.Errorf("-target is required (e.g. http://127.0.0.1:8080)")
	}
	if !strings.HasPrefix(o.target, "http://") && !strings.HasPrefix(o.target, "https://") {
		return fmt.Errorf("-target %q must be an http:// or https:// URL", o.target)
	}
	if o.interval <= 0 {
		return fmt.Errorf("-interval must be positive, got %v", o.interval)
	}
	return nil
}

// Local decode targets for the service's JSON documents: only the
// fields the frame renders, so server-side additions never break top.
type topStatus struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Workers       int            `json:"workers"`
	QueueDepth    int            `json:"queue_depth"`
	QueueCapacity int            `json:"queue_capacity"`
	Jobs          map[string]int `json:"jobs"`
	JobsTotal     int            `json:"jobs_total"`
	Scheduler     struct {
		CampaignsRunning  int `json:"campaigns_running"`
		CampaignsQueued   int `json:"campaigns_queued"`
		WorkerBudgetInUse int `json:"worker_budget_in_use"`
		WorkerBudgetSize  int `json:"worker_budget_size"`
	} `json:"scheduler"`
}

type topAlerts struct {
	Alerts []struct {
		Rule     string  `json:"rule"`
		Instance string  `json:"instance"`
		State    string  `json:"state"`
		Value    float64 `json:"value"`
	} `json:"alerts"`
	Firing int `json:"firing"`
}

type topCluster struct {
	Coordinator  bool `json:"coordinator"`
	WorkersKnown int  `json:"workers_known"`
	WorkersAlive int  `json:"workers_alive"`
	Workers      []struct {
		Name         string  `json:"name"`
		Alive        bool    `json:"alive"`
		LastSeenMS   int64   `json:"last_seen_ms"`
		ShardsDone   uint64  `json:"shards_done"`
		ShardsFailed uint64  `json:"shards_failed"`
		TrialsPerSec float64 `json:"trials_per_sec"`
		Stats        *struct {
			ShardsInflight uint64 `json:"shards_inflight"`
		} `json:"worker_stats"`
	} `json:"workers"`
}

type topSeries struct {
	Points []struct {
		T int64   `json:"t"`
		V float64 `json:"v"`
	} `json:"points"`
}

// topClient fetches one endpoint into a decode target.
type topClient struct {
	base string
	hc   *http.Client
}

func (c *topClient) get(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// sparkSeries fetched per frame: name → frame label.
var topSparks = []struct{ name, label string }{
	{"trials_total", "trials/s"},
	{"queue_depth", "queue"},
	{"campaigns_running", "campaigns"},
}

// sparkline renders points as a fixed-width ASCII intensity strip —
// the TTY stand-in for the dashboard's SVG sparklines.
func sparkline(vs []float64, width int) string {
	if len(vs) == 0 {
		return strings.Repeat(" ", width)
	}
	if len(vs) > width {
		vs = vs[len(vs)-width:]
	}
	lo, hi := vs[0], vs[0]
	for _, v := range vs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	levels := []byte(" .:-=+*#")
	var b strings.Builder
	for i := 0; i < width-len(vs); i++ {
		b.WriteByte(' ')
	}
	for _, v := range vs {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(levels)-1))
		}
		b.WriteByte(levels[idx])
	}
	return b.String()
}

// topFrame assembles one dashboard frame as display lines.  The status
// endpoint is mandatory; alerts, series, and cluster degrade to a note
// so top still works against older servers.
func topFrame(ctx context.Context, c *topClient) ([]string, error) {
	var st topStatus
	if err := c.get(ctx, "/v1/status", &st); err != nil {
		return nil, err
	}
	var lines []string
	lines = append(lines, fmt.Sprintf("resmod top · %s · up %s",
		c.base, (time.Duration(st.UptimeSeconds)*time.Second).Round(time.Second)))

	ratio := 0.0
	if st.QueueCapacity > 0 {
		ratio = float64(st.QueueDepth) / float64(st.QueueCapacity)
	}
	lines = append(lines, fmt.Sprintf(
		"queue [%s] %d/%d   jobs %d (running %d)   campaigns %d running/%d queued   budget %d/%d",
		bar(ratio), st.QueueDepth, st.QueueCapacity,
		st.JobsTotal, st.Jobs["running"],
		st.Scheduler.CampaignsRunning, st.Scheduler.CampaignsQueued,
		st.Scheduler.WorkerBudgetInUse, st.Scheduler.WorkerBudgetSize))

	var al topAlerts
	if err := c.get(ctx, "/v1/alerts", &al); err != nil {
		lines = append(lines, "alerts: unavailable ("+err.Error()+")")
	} else {
		var active []string
		for _, a := range al.Alerts {
			if a.State != "firing" && a.State != "pending" {
				continue
			}
			name := a.Rule
			if a.Instance != "" {
				name += "/" + a.Instance
			}
			active = append(active, fmt.Sprintf("%s %s (%.3g)", strings.ToUpper(a.State), name, a.Value))
		}
		if len(active) == 0 {
			lines = append(lines, "alerts: none")
		} else {
			lines = append(lines, "alerts: "+strings.Join(active, ", "))
		}
	}

	for _, sp := range topSparks {
		var sr topSeries
		if err := c.get(ctx, "/v1/series?name="+sp.name+"&since=30m&max=48", &sr); err != nil {
			continue // pre-series server: just omit the sparklines
		}
		vs := make([]float64, len(sr.Points))
		last := 0.0
		for i, p := range sr.Points {
			vs[i] = p.V
			last = p.V
		}
		lines = append(lines, fmt.Sprintf("%-10s %9.3g  |%s|", sp.label, last, sparkline(vs, 48)))
	}

	var cl topCluster
	switch err := c.get(ctx, "/v1/cluster", &cl); {
	case err != nil:
		lines = append(lines, "fleet: unavailable ("+err.Error()+")")
	case !cl.Coordinator:
		lines = append(lines, "fleet: not a coordinator")
	case len(cl.Workers) == 0:
		lines = append(lines, "fleet: coordinator, no workers registered")
	default:
		lines = append(lines, fmt.Sprintf("fleet: %d/%d workers alive", cl.WorkersAlive, cl.WorkersKnown))
		lines = append(lines, fmt.Sprintf("  %-16s %-5s %8s %10s %8s %8s",
			"worker", "state", "hb-age", "trials/s", "shards", "inflight"))
		for _, w := range cl.Workers {
			state := "down"
			if w.Alive {
				state = "up"
			}
			inflight := "-"
			if w.Stats != nil {
				inflight = fmt.Sprint(w.Stats.ShardsInflight)
			}
			lines = append(lines, fmt.Sprintf("  %-16s %-5s %7.1fs %10.1f %8d %8s",
				w.Name, state, float64(w.LastSeenMS)/1000, w.TrialsPerSec, w.ShardsDone, inflight))
		}
	}
	return lines, nil
}

// doTop polls the target and renders frames until ctx is canceled (or
// immediately once with -once, the scriptable/testable mode).
func doTop(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	fs.SetOutput(errw)
	var o topOptions
	fs.StringVar(&o.target, "target", "http://127.0.0.1:8080", "base `URL` of the resmod serve instance")
	fs.DurationVar(&o.interval, "interval", 2*time.Second, "refresh interval")
	fs.BoolVar(&o.once, "once", false, "render a single frame and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("top: unexpected arguments %v", fs.Args())
	}
	if err := o.validate(); err != nil {
		return fmt.Errorf("top: %w", err)
	}

	c := &topClient{
		base: strings.TrimRight(o.target, "/"),
		hc:   &http.Client{Timeout: 10 * time.Second},
	}
	tty := isTTY(out)
	drawn := 0
	for {
		lines, err := topFrame(ctx, c)
		if err != nil {
			if o.once {
				return fmt.Errorf("top: %w", err)
			}
			// A transient fetch error becomes a frame, so a restarting
			// server shows as "unreachable" rather than killing top.
			lines = []string{fmt.Sprintf("resmod top · %s · unreachable: %v", c.base, err)}
		}
		var b strings.Builder
		if tty && drawn > 0 {
			fmt.Fprintf(&b, "\x1b[%dA", drawn)
		}
		for _, ln := range lines {
			if tty {
				b.WriteString("\x1b[2K")
			}
			b.WriteString(ln)
			b.WriteByte('\n')
		}
		if tty && drawn > len(lines) {
			b.WriteString("\x1b[0J") // frame shrank: clear leftovers
		}
		if !tty && !o.once {
			b.WriteString("---\n")
		}
		fmt.Fprint(out, b.String())
		drawn = len(lines)
		if o.once {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(o.interval):
		}
	}
}
