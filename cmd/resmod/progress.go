package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"resmod/internal/telemetry"
)

// Renderer cadence: TTY frames redraw at most this often; non-TTY plain
// lines are emitted at most this often per key.
const (
	ttyRedrawEvery  = 100 * time.Millisecond
	plainLineEvery  = 2 * time.Second
	progressKeyMax  = 44 // rendered key width before truncation
	progressBarCols = 20
)

// isTTY reports whether w is an interactive terminal (a character
// device), which selects in-place redrawing over plain log lines.
func isTTY(w io.Writer) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	st, err := f.Stat()
	if err != nil {
		return false
	}
	return st.Mode()&os.ModeCharDevice != 0
}

// progressRenderer consumes one invocation's Progress bus and renders it
// to stderr: an in-place multi-line block (per-campaign bars, throughput,
// ETA, CI width) on a TTY, rate-limited plain lines otherwise.  It is a
// pure observer on a bounded drop-oldest subscription, so rendering can
// never slow the campaigns down.
type progressRenderer struct {
	w    io.Writer
	tty  bool
	sub  *telemetry.ProgressSub
	done chan struct{}
	quit chan struct{}

	mu        sync.Mutex                         // guards everything below and writes to w
	state     map[string]telemetry.ProgressEvent // latest event per kind+key
	order     []string                           // first-seen order of keys
	drawn     int                                // lines in the current TTY frame
	lastDraw  time.Time
	lastPlain map[string]time.Time
}

// startProgressRenderer subscribes to the bus and starts the render
// loop.  Call stop to drain and finish the final frame.
func startProgressRenderer(w io.Writer, p *telemetry.Progress) *progressRenderer {
	r := &progressRenderer{
		w: w, tty: isTTY(w), sub: p.Subscribe(256),
		done: make(chan struct{}), quit: make(chan struct{}),
		state:     make(map[string]telemetry.ProgressEvent),
		lastPlain: make(map[string]time.Time),
	}
	go r.loop()
	return r
}

// stop ends the render loop after draining buffered events, drawing one
// final frame so terminal states are visible.
func (r *progressRenderer) stop() {
	if r == nil {
		return
	}
	close(r.quit)
	<-r.done
	r.sub.Close()
}

func (r *progressRenderer) loop() {
	defer close(r.done)
	for {
		select {
		case ev := <-r.sub.Events():
			r.observe(ev)
		case <-r.quit:
			for {
				select {
				case ev := <-r.sub.Events():
					r.observe(ev)
					continue
				default:
				}
				break
			}
			r.mu.Lock()
			if r.tty && len(r.order) > 0 {
				r.redraw()
			}
			r.mu.Unlock()
			return
		}
	}
}

// Write makes the renderer a sink for the invocation's log output: on a
// TTY it erases the in-place progress block before the log line lands,
// so interleaved slog events never shear the frame (and the next redraw
// repaints the block below them).  Off-TTY it only serializes the two
// stderr writers.
func (r *progressRenderer) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tty && r.drawn > 0 {
		fmt.Fprintf(r.w, "\x1b[%dA\x1b[0J", r.drawn)
		r.drawn = 0
	}
	return r.w.Write(p)
}

// observe folds one event into the state and renders it.
func (r *progressRenderer) observe(ev telemetry.ProgressEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := ev.Kind + "\x00" + ev.Key
	if _, seen := r.state[k]; !seen {
		r.order = append(r.order, k)
	}
	r.state[k] = ev
	if r.tty {
		if ev.Terminal() || time.Since(r.lastDraw) >= ttyRedrawEvery {
			r.redraw()
		}
		return
	}
	// Non-TTY: rate-limited plain lines for running snapshots only —
	// terminal states are already covered by the structured campaign/job
	// log events, so a log file doesn't get them twice.
	if ev.Terminal() {
		return
	}
	if last, ok := r.lastPlain[k]; ok && time.Since(last) < plainLineEvery {
		return
	}
	r.lastPlain[k] = time.Now()
	fmt.Fprintf(r.w, "progress: %s\n", renderLine(ev))
}

// redraw repaints the whole in-place block: cursor up over the previous
// frame, then one cleared line per tracked key.  Callers hold r.mu.
func (r *progressRenderer) redraw() {
	r.lastDraw = time.Now()
	var b strings.Builder
	if r.drawn > 0 {
		fmt.Fprintf(&b, "\x1b[%dA", r.drawn)
	}
	for _, k := range r.order {
		b.WriteString("\x1b[2K")
		b.WriteString(renderLine(r.state[k]))
		b.WriteByte('\n')
	}
	r.drawn = len(r.order)
	fmt.Fprint(r.w, b.String())
}

// renderLine formats one event as a single display line.
func renderLine(ev telemetry.ProgressEvent) string {
	key := ev.Key
	if len(key) > progressKeyMax {
		key = key[:progressKeyMax-1] + "…"
	}
	if ev.Kind == telemetry.KindPrediction {
		return fmt.Sprintf("%-*s stages %d/%d  campaigns %d running/%d queued  budget %d/%d  [%s]",
			progressKeyMax, key, ev.Done, ev.Total,
			ev.CampaignsRunning, ev.CampaignsQueued,
			ev.WorkerBudgetInUse, ev.WorkerBudgetSize, ev.State)
	}
	line := fmt.Sprintf("%-*s [%s] %5.1f%% %d/%d",
		progressKeyMax, key, bar(ev.Ratio()), 100*ev.Ratio(), ev.Done, ev.Total)
	if ev.TrialsPerSec > 0 {
		line += fmt.Sprintf("  %.0f trials/s", ev.TrialsPerSec)
	}
	if ev.ETASeconds > 0 && !ev.Terminal() {
		line += fmt.Sprintf("  ETA %s", (time.Duration(ev.ETASeconds * float64(time.Second))).Round(time.Second))
	}
	if ev.SuccessCI != nil {
		line += fmt.Sprintf("  CI ±%.3f", ev.SuccessCI.Width()/2)
	}
	if ev.Terminal() {
		line += "  [" + ev.State + "]"
	}
	return line
}

// bar renders a fixed-width ASCII progress bar.
func bar(ratio float64) string {
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	fill := int(ratio*progressBarCols + 0.5)
	return strings.Repeat("#", fill) + strings.Repeat("-", progressBarCols-fill)
}
