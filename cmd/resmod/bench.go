package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"resmod/internal/dist"
	"resmod/internal/exper"
	"resmod/internal/faultsim"
)

// benchResult is the schema of the bench output file.
type benchResult struct {
	Bench string `json:"bench"`
	// GoMaxProcs is the core budget the run actually had; the concurrent
	// scheduler cannot beat sequential execution on one core, so readers
	// must interpret Speedup against it.
	GoMaxProcs int `json:"go_maxprocs"`
	// NumCPU is the host's visible core count, recorded separately from
	// GoMaxProcs so a Speedup near 1.0 is attributable: on a one-core
	// host the concurrent scheduler has no parallelism to exploit and
	// ~1.0x (or slightly below, from scheduling overhead) is the expected
	// honest result, not a regression.
	NumCPU int      `json:"num_cpu"`
	Apps   []string `json:"apps"`
	Trials int      `json:"trials"`
	Seed   uint64   `json:"seed"`
	Small  int      `json:"small"`
	Large  int      `json:"large"`
	// CampaignParallel is the concurrent run's campaign-slot count.
	CampaignParallel int `json:"campaign_parallel"`
	// SequentialNS and ConcurrentNS are the PredictAll wall times with
	// -campaign-parallel 1 and N respectively, each from a fresh session
	// (no shared cache, so both runs execute every campaign).
	SequentialNS int64   `json:"sequential_ns"`
	ConcurrentNS int64   `json:"concurrent_ns"`
	Speedup      float64 `json:"speedup"`
	// Identical reports that the two runs produced byte-identical
	// campaign SummaryRecords (wall-clock field excluded) and identical
	// prediction rows — the scheduler's correctness contract.
	Identical bool `json:"identical"`
	// DistWorkers is the in-process worker count of the distributed
	// dimension (0: dimension skipped with -dist-workers 0).
	DistWorkers int `json:"dist_workers"`
	// DistributedNS is the PredictAll wall time with every campaign
	// sharded over DistWorkers workers via the coordinator HTTP path;
	// DistShards is how many shard round-trips that took.
	DistributedNS int64   `json:"distributed_ns,omitempty"`
	DistShards    int64   `json:"dist_shards,omitempty"`
	DistSpeedup   float64 `json:"dist_speedup,omitempty"`
	// DistIdentical reports that the sharded run's SummaryRecords and
	// prediction rows matched the sequential single-node run byte for
	// byte — the distributed determinism contract.
	DistIdentical bool `json:"dist_identical"`
}

// doBench measures PredictAll sequential-vs-concurrent wall time on a
// fixed workload and writes the -out JSON file.  The workload honors the
// common flags (-trials, -seed, -apps, -small, -large, -workers).
func doBench(ctx context.Context, o options, out, errw io.Writer) error {
	// The output path must be explicit: a hard-coded default silently
	// froze the artifact name at the PR that introduced it, so later runs
	// overwrote the wrong file (CI then uploaded a stale path).
	outFile := o.benchOut
	if outFile == "" {
		return fmt.Errorf("bench: -out is required (e.g. -out BENCH_pr6.json; make bench derives it from BENCH_PR)")
	}
	names := splitApps(o.apps)
	if len(names) == 0 {
		names = exper.PaperBenchmarks
	}

	// Pin GOMAXPROCS for the measured runs.  Earlier bench artifacts
	// silently inherited whatever the process started with (a restricted
	// cgroup or GOMAXPROCS=1 in the environment froze go_maxprocs at 1);
	// raising it to the real core count here makes the recorded speedups
	// reflect the hardware, and -maxprocs overrides for A/B runs.
	procs := o.maxprocs
	if procs <= 0 {
		procs = runtime.NumCPU()
	}
	runtime.GOMAXPROCS(procs)
	if procs == 1 {
		fmt.Fprintf(errw, "bench: warning: running on 1 core (num_cpu=%d); "+
			"concurrent and distributed speedups measure scheduling overhead, not parallelism\n",
			runtime.NumCPU())
	}

	run := func(parallel int, distribute func(context.Context, faultsim.Campaign, *faultsim.Golden) (*faultsim.Summary, bool, error)) (time.Duration, []exper.PredictionRow, map[string]string, error) {
		recs := make(map[string]string)
		var mu sync.Mutex
		s := exper.NewSession(exper.Config{
			Trials: o.trials, Seed: o.seed, Workers: o.workers,
			CampaignParallel: parallel,
			Ctx:              ctx, Budget: o.budget,
			Distribute: distribute,
			OnCampaign: func(id string, sum *faultsim.Summary) {
				rec := sum.Record(id)
				rec.ElapsedNS = 0 // wall time is the one nondeterministic field
				b, err := json.Marshal(rec)
				if err != nil {
					return
				}
				mu.Lock()
				recs[id] = string(b)
				mu.Unlock()
			},
		})
		start := time.Now()
		rows, err := exper.PredictAll(s, names, o.small, o.large)
		elapsed := time.Since(start)
		for i := range rows {
			rows[i].SmallTime, rows[i].SerialTime = 0, 0
		}
		return elapsed, rows, recs, err
	}

	same := func(rows []exper.PredictionRow, recs map[string]string,
		seqRows []exper.PredictionRow, seqRecs map[string]string) bool {
		if len(rows) != len(seqRows) || len(recs) != len(seqRecs) {
			return false
		}
		for i := range seqRows {
			if seqRows[i] != rows[i] {
				return false
			}
		}
		for id, rec := range seqRecs {
			if recs[id] != rec {
				return false
			}
		}
		return true
	}

	fmt.Fprintf(errw, "bench: sequential PredictAll (%d apps, trials=%d, small=%d, large=%d)...\n",
		len(names), o.trials, o.small, o.large)
	seqD, seqRows, seqRecs, err := run(1, nil)
	if err != nil {
		return fmt.Errorf("bench: sequential run: %w", err)
	}
	parallel := o.campaignParallel
	if parallel <= 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(errw, "bench: concurrent PredictAll (campaign-parallel=%d)...\n", parallel)
	conD, conRows, conRecs, err := run(parallel, nil)
	if err != nil {
		return fmt.Errorf("bench: concurrent run: %w", err)
	}
	if !same(conRows, conRecs, seqRows, seqRecs) {
		return fmt.Errorf("bench: concurrent results differ from sequential — scheduler broke determinism")
	}

	// Distributed dimension: the same workload with every campaign
	// sharded over -dist-workers in-process workers through the real
	// coordinator HTTP path (register, heartbeat, shard dispatch, merge).
	// On one host this measures protocol overhead, not speedup — the
	// point is the wall-time delta and the byte-identical check.
	var distD time.Duration
	var distShards int64
	if o.distWorkers > 0 {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("bench: coordinator listener: %w", err)
		}
		pool := dist.NewPool(dist.PoolConfig{})
		hs := &http.Server{Handler: pool.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		wctx, wcancel := context.WithCancel(ctx)
		defer wcancel()
		coord := "http://" + ln.Addr().String()
		for i := 0; i < o.distWorkers; i++ {
			w, err := dist.NewWorker(dist.WorkerConfig{
				Coordinator:    coord,
				Workers:        o.workers,
				HeartbeatEvery: 100 * time.Millisecond,
			})
			if err != nil {
				return fmt.Errorf("bench: worker %d: %w", i, err)
			}
			go w.Run(wctx)
		}
		deadline := time.Now().Add(10 * time.Second)
		for pool.Stats().WorkersAlive < o.distWorkers {
			if time.Now().After(deadline) {
				return fmt.Errorf("bench: %d workers failed to register within 10s", o.distWorkers)
			}
			time.Sleep(20 * time.Millisecond)
		}
		fmt.Fprintf(errw, "bench: distributed PredictAll (%d workers via %s)...\n", o.distWorkers, coord)
		var distRows []exper.PredictionRow
		var distRecs map[string]string
		distD, distRows, distRecs, err = run(parallel, pool.Distribute)
		if err != nil {
			return fmt.Errorf("bench: distributed run: %w", err)
		}
		if !same(distRows, distRecs, seqRows, seqRecs) {
			return fmt.Errorf("bench: distributed results differ from sequential — sharding broke determinism")
		}
		st := pool.Stats()
		if st.ShardsCompleted == 0 {
			return fmt.Errorf("bench: distributed run completed no shards — work fell back to local execution")
		}
		distShards = int64(st.ShardsCompleted)
	}

	res := benchResult{
		Bench:            "predict_all",
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		NumCPU:           runtime.NumCPU(),
		Apps:             names,
		Trials:           o.trials,
		Seed:             o.seed,
		Small:            o.small,
		Large:            o.large,
		CampaignParallel: parallel,
		SequentialNS:     seqD.Nanoseconds(),
		ConcurrentNS:     conD.Nanoseconds(),
		Identical:        true,
		DistWorkers:      o.distWorkers,
	}
	if conD > 0 {
		res.Speedup = float64(seqD) / float64(conD)
	}
	if o.distWorkers > 0 {
		res.DistributedNS = distD.Nanoseconds()
		res.DistShards = distShards
		res.DistIdentical = true
		if distD > 0 {
			res.DistSpeedup = float64(seqD) / float64(distD)
		}
	}
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outFile, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", outFile, err)
	}
	fmt.Fprintf(out, "sequential: %v\nconcurrent: %v (campaign-parallel=%d, cores=%d)\nspeedup: %.2fx, bit-identical: %v\n",
		seqD.Round(time.Millisecond), conD.Round(time.Millisecond),
		parallel, res.GoMaxProcs, res.Speedup, res.Identical)
	if o.distWorkers > 0 {
		fmt.Fprintf(out, "distributed: %v (%d workers, %d shards), speedup vs sequential: %.2fx, bit-identical: %v\n",
			distD.Round(time.Millisecond), o.distWorkers, distShards, res.DistSpeedup, res.DistIdentical)
	}
	fmt.Fprintf(out, "wrote %s\n", outFile)
	return nil
}
