package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"resmod/internal/exper"
	"resmod/internal/faultsim"
)

// benchResult is the schema of the bench output file.
type benchResult struct {
	Bench string `json:"bench"`
	// GoMaxProcs is the core budget the run actually had; the concurrent
	// scheduler cannot beat sequential execution on one core, so readers
	// must interpret Speedup against it.
	GoMaxProcs int      `json:"go_maxprocs"`
	Apps       []string `json:"apps"`
	Trials     int      `json:"trials"`
	Seed       uint64   `json:"seed"`
	Small      int      `json:"small"`
	Large      int      `json:"large"`
	// CampaignParallel is the concurrent run's campaign-slot count.
	CampaignParallel int `json:"campaign_parallel"`
	// SequentialNS and ConcurrentNS are the PredictAll wall times with
	// -campaign-parallel 1 and N respectively, each from a fresh session
	// (no shared cache, so both runs execute every campaign).
	SequentialNS int64   `json:"sequential_ns"`
	ConcurrentNS int64   `json:"concurrent_ns"`
	Speedup      float64 `json:"speedup"`
	// Identical reports that the two runs produced byte-identical
	// campaign SummaryRecords (wall-clock field excluded) and identical
	// prediction rows — the scheduler's correctness contract.
	Identical bool `json:"identical"`
}

// doBench measures PredictAll sequential-vs-concurrent wall time on a
// fixed workload and writes the -out JSON file.  The workload honors the
// common flags (-trials, -seed, -apps, -small, -large, -workers).
func doBench(ctx context.Context, o options, out, errw io.Writer) error {
	// The output path must be explicit: a hard-coded default silently
	// froze the artifact name at the PR that introduced it, so later runs
	// overwrote the wrong file (CI then uploaded a stale path).
	outFile := o.benchOut
	if outFile == "" {
		return fmt.Errorf("bench: -out is required (e.g. -out BENCH_pr6.json; make bench derives it from BENCH_PR)")
	}
	names := splitApps(o.apps)
	if len(names) == 0 {
		names = exper.PaperBenchmarks
	}

	run := func(parallel int) (time.Duration, []exper.PredictionRow, map[string]string, error) {
		recs := make(map[string]string)
		var mu sync.Mutex
		s := exper.NewSession(exper.Config{
			Trials: o.trials, Seed: o.seed, Workers: o.workers,
			CampaignParallel: parallel,
			Ctx:              ctx, Budget: o.budget,
			OnCampaign: func(id string, sum *faultsim.Summary) {
				rec := sum.Record(id)
				rec.ElapsedNS = 0 // wall time is the one nondeterministic field
				b, err := json.Marshal(rec)
				if err != nil {
					return
				}
				mu.Lock()
				recs[id] = string(b)
				mu.Unlock()
			},
		})
		start := time.Now()
		rows, err := exper.PredictAll(s, names, o.small, o.large)
		elapsed := time.Since(start)
		for i := range rows {
			rows[i].SmallTime, rows[i].SerialTime = 0, 0
		}
		return elapsed, rows, recs, err
	}

	fmt.Fprintf(errw, "bench: sequential PredictAll (%d apps, trials=%d, small=%d, large=%d)...\n",
		len(names), o.trials, o.small, o.large)
	seqD, seqRows, seqRecs, err := run(1)
	if err != nil {
		return fmt.Errorf("bench: sequential run: %w", err)
	}
	parallel := o.campaignParallel
	if parallel <= 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(errw, "bench: concurrent PredictAll (campaign-parallel=%d)...\n", parallel)
	conD, conRows, conRecs, err := run(parallel)
	if err != nil {
		return fmt.Errorf("bench: concurrent run: %w", err)
	}

	identical := len(seqRows) == len(conRows) && len(seqRecs) == len(conRecs)
	if identical {
		for i := range seqRows {
			if seqRows[i] != conRows[i] {
				identical = false
				break
			}
		}
		for id, rec := range seqRecs {
			if conRecs[id] != rec {
				identical = false
				break
			}
		}
	}
	if !identical {
		return fmt.Errorf("bench: concurrent results differ from sequential — scheduler broke determinism")
	}

	res := benchResult{
		Bench:            "predict_all",
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		Apps:             names,
		Trials:           o.trials,
		Seed:             o.seed,
		Small:            o.small,
		Large:            o.large,
		CampaignParallel: parallel,
		SequentialNS:     seqD.Nanoseconds(),
		ConcurrentNS:     conD.Nanoseconds(),
		Identical:        true,
	}
	if conD > 0 {
		res.Speedup = float64(seqD) / float64(conD)
	}
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outFile, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", outFile, err)
	}
	fmt.Fprintf(out, "sequential: %v\nconcurrent: %v (campaign-parallel=%d, cores=%d)\nspeedup: %.2fx, bit-identical: %v\nwrote %s\n",
		seqD.Round(time.Millisecond), conD.Round(time.Millisecond),
		parallel, res.GoMaxProcs, res.Speedup, res.Identical, outFile)
	return nil
}
