package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchCommandSchema runs a tiny bench workload and checks the JSON
// artifact carries the host-attribution fields (go_maxprocs and num_cpu)
// and the determinism flags — the contract downstream trajectory readers
// (BENCH_pr*.json diffs, CI) depend on.
func TestBenchCommandSchema(t *testing.T) {
	outFile := filepath.Join(t.TempDir(), "bench.json")
	var out, errw bytes.Buffer
	err := run(context.Background(), []string{
		"bench", "-quiet", "-out", outFile,
		"-apps", "PENNANT", "-trials", "4", "-small", "2", "-large", "4",
		"-maxprocs", "1", "-dist-workers", "0",
	}, &out, &errw)
	if err != nil {
		t.Fatalf("bench: %v\nstderr: %s", err, errw.String())
	}
	// Pinned to one core, the run must warn that speedups measure
	// scheduling overhead rather than parallelism.
	if !strings.Contains(errw.String(), "warning: running on 1 core") {
		t.Errorf("missing 1-core warning on stderr:\n%s", errw.String())
	}
	b, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var res benchResult
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatalf("artifact not valid JSON: %v\n%s", err, b)
	}
	if res.GoMaxProcs != 1 {
		t.Errorf("go_maxprocs = %d, want 1 (pinned)", res.GoMaxProcs)
	}
	if res.NumCPU < 1 {
		t.Errorf("num_cpu = %d, want >= 1", res.NumCPU)
	}
	if !res.Identical {
		t.Error("identical = false; concurrent run diverged")
	}
	if res.SequentialNS <= 0 || res.ConcurrentNS <= 0 {
		t.Errorf("non-positive wall times: seq=%d con=%d", res.SequentialNS, res.ConcurrentNS)
	}
}
