package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"resmod/internal/server"
	"resmod/internal/telemetry"
)

// loadgen replays a weighted endpoint mix against a running resmod serve
// instance and reports what the service did under pressure: latency
// quantiles, throughput, shed rate, and per-tenant fairness.  It is the
// client half of the traffic-hardening contract — it honors Retry-After,
// reuses Idempotency-Keys across retries, and treats any 5xx other than
// a drain 503 as a server bug.

// latencyBuckets covers the service's response-time range, in seconds:
// cache hits answer in well under a millisecond, cold campaigns in
// seconds.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

type loadgenOptions struct {
	target     string
	clients    int
	duration   time.Duration
	mix        string
	keys       string
	priorities string
	retries    int
	backoff    time.Duration
	maxBackoff time.Duration
	seed       uint64
	out        string
	jsonOut    bool
	failOn5xx  bool
}

func (o loadgenOptions) validate() error {
	if o.target == "" {
		return fmt.Errorf("-target is required (e.g. http://127.0.0.1:8080)")
	}
	if !strings.HasPrefix(o.target, "http://") && !strings.HasPrefix(o.target, "https://") {
		return fmt.Errorf("-target %q must be an http:// or https:// URL", o.target)
	}
	if o.clients <= 0 {
		return fmt.Errorf("-clients must be positive, got %d", o.clients)
	}
	if o.duration <= 0 {
		return fmt.Errorf("-duration must be positive, got %v", o.duration)
	}
	if o.retries < 0 {
		return fmt.Errorf("-retries must be non-negative, got %d", o.retries)
	}
	if o.backoff <= 0 {
		return fmt.Errorf("-backoff must be positive, got %v", o.backoff)
	}
	if o.maxBackoff < o.backoff {
		return fmt.Errorf("-max-backoff %v must be >= -backoff %v", o.maxBackoff, o.backoff)
	}
	return nil
}

// weighted is one entry of a "name=weight,name=weight" mix flag.
type weighted struct {
	name   string
	weight int
}

// parseMix parses "predict=60,get=30,status=10" into weighted entries,
// validating names against allowed (nil = any name).
func parseMix(flagName, s string, allowed []string) ([]weighted, error) {
	var out []weighted
	total := 0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, w, found := strings.Cut(part, "=")
		weight := 1
		if found {
			n, err := strconv.Atoi(strings.TrimSpace(w))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("%s: bad weight in %q", flagName, part)
			}
			weight = n
		}
		name = strings.TrimSpace(name)
		if allowed != nil {
			ok := false
			for _, a := range allowed {
				if name == a {
					ok = true
					break
				}
			}
			if !ok {
				return nil, fmt.Errorf("%s: unknown entry %q (want one of %s)",
					flagName, name, strings.Join(allowed, ", "))
			}
		}
		out = append(out, weighted{name: name, weight: weight})
		total += weight
	}
	if len(out) == 0 || total == 0 {
		return nil, fmt.Errorf("%s: %q selects nothing", flagName, s)
	}
	return out, nil
}

// pick draws one name from the mix using the client's rng.
func pick(mix []weighted, rng *rand.Rand) string {
	total := 0
	for _, m := range mix {
		total += m.weight
	}
	n := rng.Intn(total)
	for _, m := range mix {
		if n < m.weight {
			return m.name
		}
		n -= m.weight
	}
	return mix[len(mix)-1].name
}

// predictBodies are the cheap, always-registered configurations the
// generator cycles through.  Repeats are intentional: they exercise the
// server's content-addressed dedup and duplicate-join paths.
var predictBodies = []map[string]any{
	{"app": "PENNANT", "small": 2, "large": 4},
	{"app": "PENNANT", "small": 4, "large": 8},
	{"app": "CG", "small": 2, "large": 8},
}

// loadCounts is one tenant's (or the global) outcome tally.
type loadCounts struct {
	requests atomic.Uint64
	admitted atomic.Uint64 // 2xx on POST /v1/predictions
	ok       atomic.Uint64 // any 2xx
	shed     atomic.Uint64 // 429
	drain    atomic.Uint64 // 503 with Retry-After (the drain contract)
	bad5xx   atomic.Uint64 // any other 5xx: a server bug under load
	client4x atomic.Uint64
	netErr   atomic.Uint64
	retries  atomic.Uint64
	replays  atomic.Uint64 // Idempotency-Replay: true responses
}

// loadState is the shared harness state across client goroutines.
type loadState struct {
	opts     loadgenOptions
	mix      []weighted
	prios    []weighted
	keys     []string
	client   *http.Client
	total    loadCounts
	perKey   map[string]*loadCounts
	lat      *telemetry.Histogram
	idemSeq  atomic.Uint64
	jobMu    sync.Mutex
	jobIDs   []string
	started  time.Time
	finished time.Duration
}

// rememberJob keeps a bounded pool of admitted job ids for the get mix.
func (ls *loadState) rememberJob(id string) {
	ls.jobMu.Lock()
	if len(ls.jobIDs) < 1024 {
		ls.jobIDs = append(ls.jobIDs, id)
	} else {
		ls.jobIDs[int(ls.idemSeq.Load())%len(ls.jobIDs)] = id
	}
	ls.jobMu.Unlock()
}

func (ls *loadState) randomJob(rng *rand.Rand) string {
	ls.jobMu.Lock()
	defer ls.jobMu.Unlock()
	if len(ls.jobIDs) == 0 {
		return ""
	}
	return ls.jobIDs[rng.Intn(len(ls.jobIDs))]
}

// tenantFor maps a client index to its API key ("anon" = no key).
func (ls *loadState) tenantFor(i int) string {
	return ls.keys[i%len(ls.keys)]
}

// doLoadgen runs the load generator until -duration elapses or ctx is
// canceled, then renders the report (human to out, JSON to -out / -json).
func doLoadgen(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(errw)
	var o loadgenOptions
	fs.StringVar(&o.target, "target", "", "base `URL` of the resmod serve instance (required)")
	fs.IntVar(&o.clients, "clients", 8, "concurrent client goroutines")
	fs.DurationVar(&o.duration, "duration", 10*time.Second, "how long to generate load")
	fs.StringVar(&o.mix, "mix", "predict=60,get=25,status=10,metrics=5",
		"weighted endpoint mix (predict, get, status, metrics, workers)")
	fs.StringVar(&o.keys, "keys", "anon",
		"comma-separated API keys to spread clients across (\"anon\" = no key)")
	fs.StringVar(&o.priorities, "priorities", "normal=80,high=10,low=10",
		"weighted priority mix for predict requests")
	fs.IntVar(&o.retries, "retries", 3, "max retries per shed (429/503) request")
	fs.DurationVar(&o.backoff, "backoff", 200*time.Millisecond,
		"base backoff when a shed response carries no usable Retry-After")
	fs.DurationVar(&o.maxBackoff, "max-backoff", 5*time.Second,
		"cap applied to honored Retry-After waits")
	fs.Uint64Var(&o.seed, "seed", 2018, "rng seed for mix/priority draws")
	fs.StringVar(&o.out, "out", "", "write the JSON report to `file`")
	fs.BoolVar(&o.jsonOut, "json", false, "print the JSON report instead of the human summary")
	fs.BoolVar(&o.failOn5xx, "fail-on-5xx", false,
		"exit non-zero if any 5xx other than a drain 503 was observed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("loadgen: unexpected arguments %v", fs.Args())
	}
	if err := o.validate(); err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	mix, err := parseMix("-mix", o.mix, []string{"predict", "get", "status", "metrics", "workers"})
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	prios, err := parseMix("-priorities", o.priorities, []string{"low", "normal", "high"})
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	keys := splitApps(o.keys) // same comma-list parsing as -apps
	if len(keys) == 0 {
		keys = []string{"anon"}
	}

	ls := &loadState{
		opts:   o,
		mix:    mix,
		prios:  prios,
		keys:   keys,
		client: &http.Client{Timeout: 30 * time.Second},
		perKey: make(map[string]*loadCounts, len(keys)),
		lat:    telemetry.NewHistogram(latencyBuckets),
	}
	for _, k := range keys {
		if _, ok := ls.perKey[k]; !ok {
			ls.perKey[k] = &loadCounts{}
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, o.duration)
	defer cancel()
	ls.started = time.Now()
	var wg sync.WaitGroup
	for i := 0; i < o.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(o.seed) + int64(i)))
			ls.clientLoop(runCtx, i, rng)
		}(i)
	}
	wg.Wait()
	ls.finished = time.Since(ls.started)

	rep := ls.report()
	if o.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fmt.Errorf("loadgen: %w", err)
		}
		if err := os.WriteFile(o.out, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("loadgen: %w", err)
		}
	}
	if o.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return fmt.Errorf("loadgen: %w", err)
		}
	} else {
		renderLoadReport(out, rep)
	}

	if rep.OK == 0 {
		return fmt.Errorf("loadgen: no request succeeded against %s", o.target)
	}
	if o.failOn5xx && rep.Other5xx > 0 {
		return fmt.Errorf("loadgen: %d non-drain 5xx responses (server bug under load)", rep.Other5xx)
	}
	return nil
}

// clientLoop is one client goroutine: pick an endpoint from the mix,
// issue it (with retry/backoff for predict), repeat until the deadline.
func (ls *loadState) clientLoop(ctx context.Context, idx int, rng *rand.Rand) {
	key := ls.tenantFor(idx)
	for ctx.Err() == nil {
		switch pick(ls.mix, rng) {
		case "predict":
			ls.doPredict(ctx, key, rng)
		case "get":
			if id := ls.randomJob(rng); id != "" {
				ls.doGet(ctx, key, "/v1/predictions/"+id)
			} else {
				// Nothing admitted yet: seed the pool instead of spinning.
				ls.doPredict(ctx, key, rng)
			}
		case "status":
			ls.doGet(ctx, key, "/healthz")
		case "metrics":
			ls.doGet(ctx, key, "/metrics")
		case "workers":
			// Coordinator awareness: the worker roster endpoint.  Plain
			// servers answer it too (coordinator:false), so the mix entry
			// is safe against any target.
			ls.doGet(ctx, key, "/v1/workers")
		}
	}
}

// doPredict issues one logical POST /v1/predictions: a fresh
// Idempotency-Key, reused verbatim across up to -retries shed retries,
// honoring the server's Retry-After (capped at -max-backoff).
func (ls *loadState) doPredict(ctx context.Context, key string, rng *rand.Rand) {
	body := predictBodies[rng.Intn(len(predictBodies))]
	req := make(map[string]any, len(body)+1)
	for k, v := range body {
		req[k] = v
	}
	if prio := pick(ls.prios, rng); prio != "normal" {
		req["priority"] = prio
	}
	payload, _ := json.Marshal(req)
	idemKey := fmt.Sprintf("lg-%d-%d", ls.opts.seed, ls.idemSeq.Add(1))

	counts := ls.perKey[key]
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			return
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
			ls.opts.target+"/v1/predictions", bytes.NewReader(payload))
		if err != nil {
			return
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set(server.IdempotencyKeyHeader, idemKey)
		if key != "anon" {
			hreq.Header.Set("X-API-Key", key)
		}
		start := time.Now()
		resp, err := ls.client.Do(hreq)
		ls.total.requests.Add(1)
		counts.requests.Add(1)
		if err != nil {
			if ctx.Err() != nil {
				return // deadline racing the request, not a server fault
			}
			ls.total.netErr.Add(1)
			counts.netErr.Add(1)
			return
		}
		retryAfter := resp.Header.Get("Retry-After")
		replayed := resp.Header.Get(server.IdempotencyReplayHeader) == "true"
		rbody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()

		switch {
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			ls.lat.Observe(time.Since(start).Seconds())
			ls.total.ok.Add(1)
			counts.ok.Add(1)
			ls.total.admitted.Add(1)
			counts.admitted.Add(1)
			if replayed {
				ls.total.replays.Add(1)
				counts.replays.Add(1)
			}
			var job struct {
				ID string `json:"id"`
			}
			if json.Unmarshal(rbody, &job) == nil && job.ID != "" {
				ls.rememberJob(job.ID)
			}
			return
		case resp.StatusCode == http.StatusTooManyRequests:
			ls.total.shed.Add(1)
			counts.shed.Add(1)
		case resp.StatusCode == http.StatusServiceUnavailable && retryAfter != "":
			ls.total.drain.Add(1)
			counts.drain.Add(1)
		case resp.StatusCode >= 500:
			ls.total.bad5xx.Add(1)
			counts.bad5xx.Add(1)
			return // not retryable: this is the bug loadgen exists to catch
		default:
			ls.total.client4x.Add(1)
			counts.client4x.Add(1)
			return
		}
		// Shed (429) or draining (503): back off and retry the same
		// logical request, same Idempotency-Key.
		if attempt >= ls.opts.retries {
			return
		}
		ls.total.retries.Add(1)
		counts.retries.Add(1)
		wait := ls.opts.backoff << uint(attempt)
		if s, err := strconv.Atoi(retryAfter); err == nil && s > 0 {
			wait = time.Duration(s) * time.Second
		}
		if wait > ls.opts.maxBackoff {
			wait = ls.opts.maxBackoff
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
	}
}

// doGet issues one read-only request (no retries: reads are cheap and
// the next loop iteration is the retry).
func (ls *loadState) doGet(ctx context.Context, key, path string) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, ls.opts.target+path, nil)
	if err != nil {
		return
	}
	if key != "anon" {
		hreq.Header.Set("X-API-Key", key)
	}
	counts := ls.perKey[key]
	start := time.Now()
	resp, err := ls.client.Do(hreq)
	ls.total.requests.Add(1)
	counts.requests.Add(1)
	if err != nil {
		if ctx.Err() != nil {
			return
		}
		ls.total.netErr.Add(1)
		counts.netErr.Add(1)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		ls.lat.Observe(time.Since(start).Seconds())
		ls.total.ok.Add(1)
		counts.ok.Add(1)
	case resp.StatusCode == http.StatusTooManyRequests:
		ls.total.shed.Add(1)
		counts.shed.Add(1)
	case resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "":
		ls.total.drain.Add(1)
		counts.drain.Add(1)
	case resp.StatusCode >= 500:
		ls.total.bad5xx.Add(1)
		counts.bad5xx.Add(1)
	default:
		ls.total.client4x.Add(1)
		counts.client4x.Add(1)
	}
}

// loadReport is the machine-readable run summary (also what -out writes).
type loadReport struct {
	Target  string `json:"target"`
	Clients int    `json:"clients"`
	// StartedAt/EndedAt bracket the generation window in wall time (with
	// unix-second twins) so a run can be correlated against the server's
	// retained series: /v1/series?since=<start_unix> replays exactly the
	// service's view of this load.
	StartedAt  string  `json:"started_at"`
	EndedAt    string  `json:"ended_at"`
	StartUnix  int64   `json:"start_unix"`
	EndUnix    int64   `json:"end_unix"`
	DurationS  float64 `json:"duration_seconds"`
	Requests   uint64  `json:"requests"`
	OK         uint64  `json:"ok"`
	Admitted   uint64  `json:"admitted"`
	Shed429    uint64  `json:"shed_429"`
	Drain503   uint64  `json:"drain_503"`
	Other5xx   uint64  `json:"other_5xx"`
	Client4xx  uint64  `json:"client_4xx"`
	NetErrors  uint64  `json:"net_errors"`
	Retries    uint64  `json:"retries"`
	Replays    uint64  `json:"idempotent_replays"`
	Throughput float64 `json:"ok_per_second"`
	ShedRate   float64 `json:"shed_rate"`
	P50Ms      float64 `json:"latency_p50_ms"`
	P95Ms      float64 `json:"latency_p95_ms"`
	P99Ms      float64 `json:"latency_p99_ms"`
	MeanMs     float64 `json:"latency_mean_ms"`
	Fairness   float64 `json:"fairness"`

	Tenants []tenantReport `json:"tenants"`
}

// tenantReport is one API key's slice of the run.
type tenantReport struct {
	Key      string  `json:"key"`
	Requests uint64  `json:"requests"`
	Admitted uint64  `json:"admitted"`
	Shed     uint64  `json:"shed"`
	Share    float64 `json:"admitted_share"`
}

func (ls *loadState) report() loadReport {
	snap := ls.lat.Snapshot()
	ended := ls.started.Add(ls.finished)
	rep := loadReport{
		Target:    ls.opts.target,
		Clients:   ls.opts.clients,
		StartedAt: ls.started.UTC().Format(time.RFC3339),
		EndedAt:   ended.UTC().Format(time.RFC3339),
		StartUnix: ls.started.Unix(),
		EndUnix:   ended.Unix(),
		DurationS: ls.finished.Seconds(),
		Requests:  ls.total.requests.Load(),
		OK:        ls.total.ok.Load(),
		Admitted:  ls.total.admitted.Load(),
		Shed429:   ls.total.shed.Load(),
		Drain503:  ls.total.drain.Load(),
		Other5xx:  ls.total.bad5xx.Load(),
		Client4xx: ls.total.client4x.Load(),
		NetErrors: ls.total.netErr.Load(),
		Retries:   ls.total.retries.Load(),
		Replays:   ls.total.replays.Load(),
		P50Ms:     snap.Quantile(0.50) * 1000,
		P95Ms:     snap.Quantile(0.95) * 1000,
		P99Ms:     snap.Quantile(0.99) * 1000,
		MeanMs:    snap.Mean() * 1000,
	}
	if rep.DurationS > 0 {
		rep.Throughput = float64(rep.OK) / rep.DurationS
	}
	if rep.Requests > 0 {
		rep.ShedRate = float64(rep.Shed429) / float64(rep.Requests)
	}

	var totalAdmitted uint64
	for _, c := range ls.perKey {
		totalAdmitted += c.admitted.Load()
	}
	keys := make([]string, 0, len(ls.perKey))
	for k := range ls.perKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	minShare, maxShare := 1.0, 0.0
	for _, k := range keys {
		c := ls.perKey[k]
		tr := tenantReport{
			Key:      k,
			Requests: c.requests.Load(),
			Admitted: c.admitted.Load(),
			Shed:     c.shed.Load(),
		}
		if totalAdmitted > 0 {
			tr.Share = float64(tr.Admitted) / float64(totalAdmitted)
		}
		if tr.Share < minShare {
			minShare = tr.Share
		}
		if tr.Share > maxShare {
			maxShare = tr.Share
		}
		rep.Tenants = append(rep.Tenants, tr)
	}
	// Fairness: min/max admitted share across keys (1.0 = perfectly even;
	// meaningful only with 2+ keys).
	if len(keys) >= 2 && maxShare > 0 {
		rep.Fairness = minShare / maxShare
	} else if totalAdmitted > 0 {
		rep.Fairness = 1
	}
	return rep
}

// renderLoadReport prints the human-readable summary.
func renderLoadReport(w io.Writer, r loadReport) {
	fmt.Fprintln(w, "== loadgen ==")
	fmt.Fprintf(w, "target:      %s (%d clients, %.1fs)\n", r.Target, r.Clients, r.DurationS)
	fmt.Fprintf(w, "requests:    %d (ok %d, shed-429 %d, drain-503 %d, other-5xx %d, 4xx %d, net %d)\n",
		r.Requests, r.OK, r.Shed429, r.Drain503, r.Other5xx, r.Client4xx, r.NetErrors)
	fmt.Fprintf(w, "retries:     %d (idempotent replays %d)\n", r.Retries, r.Replays)
	fmt.Fprintf(w, "latency:     p50 %.2fms  p95 %.2fms  p99 %.2fms  (mean %.2fms)\n",
		r.P50Ms, r.P95Ms, r.P99Ms, r.MeanMs)
	fmt.Fprintf(w, "throughput:  %.1f ok/s, shed rate %.1f%%\n", r.Throughput, 100*r.ShedRate)
	for _, t := range r.Tenants {
		fmt.Fprintf(w, "tenant %-12s requests %-6d admitted %-6d shed %-6d share %.1f%%\n",
			t.Key, t.Requests, t.Admitted, t.Shed, 100*t.Share)
	}
	fmt.Fprintf(w, "fairness:    %.2f (min/max admitted share)\n", r.Fairness)
}
