package main

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
)

// startPprof opens a net/http/pprof listener on its own address so
// profiling access never shares a service port.  An empty addr is a
// no-op.  The returned stop function closes the listener; it is always
// safe to call.
func startPprof(addr string, log *slog.Logger) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return func() {}, fmt.Errorf("pprof: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(ln, mux) }()
	log.Info(fmt.Sprintf("pprof listening on http://%s/debug/pprof/", ln.Addr()))
	return func() { ln.Close() }, nil
}
