package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"resmod/internal/server"
)

// TestLoadgenFlagValidation: misconfigurations fail before any request
// is sent, naming the bad flag.
func TestLoadgenFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{}, "-target"},
		{[]string{"-target", "ftp://x"}, "-target"},
		{[]string{"-target", "http://x", "-clients", "0"}, "-clients"},
		{[]string{"-target", "http://x", "-duration", "0s"}, "-duration"},
		{[]string{"-target", "http://x", "-retries", "-1"}, "-retries"},
		{[]string{"-target", "http://x", "-backoff", "0s"}, "-backoff"},
		{[]string{"-target", "http://x", "-max-backoff", "1ms"}, "-max-backoff"},
		{[]string{"-target", "http://x", "-mix", "predict=60,delete=40"}, "-mix"},
		{[]string{"-target", "http://x", "-mix", "predict=0"}, "-mix"},
		{[]string{"-target", "http://x", "-priorities", "urgent=1"}, "-priorities"},
		{[]string{"-target", "http://x", "extra"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		var out, errw bytes.Buffer
		err := run(context.Background(), append([]string{"loadgen"}, tc.args...), &out, &errw)
		if err == nil {
			t.Errorf("loadgen %v accepted", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("loadgen %v error %q does not name %q", tc.args, err, tc.want)
		}
	}
}

// TestParseMix pins the mix grammar: weights, bare names, whitespace,
// and the validation of entry names.
func TestParseMix(t *testing.T) {
	mix, err := parseMix("-mix", " predict=3, get ", []string{"predict", "get"})
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0] != (weighted{"predict", 3}) || mix[1] != (weighted{"get", 1}) {
		t.Fatalf("parseMix = %v", mix)
	}
	if _, err := parseMix("-mix", "predict=x", nil); err == nil {
		t.Fatal("bad weight accepted")
	}
	if _, err := parseMix("-mix", ",,", nil); err == nil {
		t.Fatal("empty mix accepted")
	}
	// A weighted draw over {a:1, b:3} must return both names eventually.
	rng := rand.New(rand.NewSource(1))
	seen := map[string]bool{}
	two := []weighted{{"a", 1}, {"b", 3}}
	for i := 0; i < 100; i++ {
		seen[pick(two, rng)] = true
	}
	if !seen["a"] || !seen["b"] {
		t.Fatalf("pick never drew both entries: %v", seen)
	}
}

// TestLoadgenEndToEnd drives a real hardened server for a second and
// checks the report adds up: successes happened, no non-drain 5xx, both
// tenants appear, and the JSON artifact round-trips.
func TestLoadgenEndToEnd(t *testing.T) {
	srv := server.New(server.Config{
		Trials: 5, Seed: 42, Workers: 2, Queue: 32,
		APIKeys: map[string]string{"k1": "team1"},
	})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		_ = srv.Close(context.Background())
	})

	outFile := filepath.Join(t.TempDir(), "report.json")
	var out, errw bytes.Buffer
	err := run(context.Background(), []string{"loadgen",
		"-target", hs.URL, "-clients", "4", "-duration", "1s",
		"-mix", "predict=50,get=30,status=10,metrics=10",
		"-keys", "anon,k1", "-retries", "1",
		"-out", outFile, "-fail-on-5xx"}, &out, &errw)
	if err != nil {
		t.Fatalf("loadgen: %v\nstderr: %s", err, errw.String())
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report artifact is not JSON: %v", err)
	}
	if rep.OK == 0 {
		t.Fatal("report shows zero successful requests")
	}
	if rep.Other5xx != 0 {
		t.Fatalf("report shows %d non-drain 5xx against a healthy server", rep.Other5xx)
	}
	if len(rep.Tenants) != 2 || rep.Tenants[0].Key != "anon" || rep.Tenants[1].Key != "k1" {
		t.Fatalf("tenant breakdown = %+v, want anon and k1", rep.Tenants)
	}
	if rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms {
		t.Fatalf("latency quantiles inconsistent: p50=%v p99=%v", rep.P50Ms, rep.P99Ms)
	}
	// The wall-time window is what correlates a run against /v1/series.
	if rep.StartUnix <= 0 || rep.EndUnix < rep.StartUnix {
		t.Fatalf("wall-time window inconsistent: start=%d end=%d", rep.StartUnix, rep.EndUnix)
	}
	for _, stamp := range []string{rep.StartedAt, rep.EndedAt} {
		if _, err := time.Parse(time.RFC3339, stamp); err != nil {
			t.Fatalf("timestamp %q is not RFC3339: %v", stamp, err)
		}
	}
	for _, line := range []string{"== loadgen ==", "throughput:", "fairness:"} {
		if !strings.Contains(out.String(), line) {
			t.Fatalf("human summary missing %q:\n%s", line, out.String())
		}
	}
}

// TestLoadgenFailOn5xx: a backend that 500s on submissions must turn
// into a non-zero exit when -fail-on-5xx is set.
func TestLoadgenFailOn5xx(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(hs.Close)

	var out, errw bytes.Buffer
	err := run(context.Background(), []string{"loadgen",
		"-target", hs.URL, "-clients", "2", "-duration", "300ms",
		"-mix", "predict=1,status=1", "-fail-on-5xx"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "5xx") {
		t.Fatalf("err = %v, want a non-drain-5xx failure", err)
	}
}
