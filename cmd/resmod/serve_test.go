package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a bytes.Buffer safe to read while the server goroutine
// writes log lines to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeFlagValidation: misconfigurations must fail before the
// listener binds, with a message naming the bad flag.
func TestServeFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-listen", "no-port-here"}, "-listen"},
		{[]string{"-listen", "host:notaport"}, "-listen"},
		{[]string{"-listen", "host:70000"}, "-listen"},
		{[]string{"-listen", "bad host:80"}, "-listen"},
		{[]string{"-workers", "0"}, "-workers"},
		{[]string{"-workers", "-3"}, "-workers"},
		{[]string{"-queue", "0"}, "-queue"},
		{[]string{"-cache", "-1"}, "-cache"},
		{[]string{"-trials", "0"}, "-trials"},
		{[]string{"-campaign-workers", "-1"}, "-campaign-workers"},
		{[]string{"-drain", "0s"}, "-drain"},
		{[]string{"-api-keys", "k:t", "-api-keys-file", "f"}, "mutually exclusive"},
		{[]string{"-api-keys", "justakey"}, "KEY:TENANT"},
		{[]string{"-api-keys", "k:anon"}, "reserved"},
		{[]string{"-api-keys", "k:a,k:b"}, "twice"},
		{[]string{"-api-keys-file", "/does/not/exist"}, "-api-keys-file"},
		{[]string{"-tenant-rate", "-1"}, "-tenant-rate"},
		{[]string{"-tenant-burst", "-1"}, "-tenant-burst"},
		{[]string{"-tenant-inflight", "-1"}, "-tenant-inflight"},
		{[]string{"-anon-rate", "-0.5"}, "-anon-rate"},
		{[]string{"-anon-inflight", "-2"}, "-anon-inflight"},
		{[]string{"extra", "positional"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		var out, errw bytes.Buffer
		err := run(context.Background(), append([]string{"serve"}, tc.args...), &out, &errw)
		if err == nil {
			t.Errorf("serve %v accepted", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("serve %v error %q does not name %q", tc.args, err, tc.want)
		}
	}
}

// TestAPIKeysFile pins the key-file grammar: comments and blanks skipped,
// KEY:TENANT per line, parsed into the same map as the inline flag.
func TestAPIKeysFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys")
	content := "# production keys\n\nalpha-key:team-alpha\nbeta-key:team-beta\n"
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	keys, err := loadAPIKeysFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"alpha-key": "team-alpha", "beta-key": "team-beta"}
	if len(keys) != len(want) || keys["alpha-key"] != "team-alpha" || keys["beta-key"] != "team-beta" {
		t.Fatalf("loadAPIKeysFile = %v, want %v", keys, want)
	}
	empty := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(empty, []byte("# nothing\n\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := loadAPIKeysFile(empty); err == nil {
		t.Fatal("comment-only key file accepted")
	}
}

// TestServeBootAndShutdown boots the service on an ephemeral port and
// confirms a canceled context exits cleanly (exit 0 path).
func TestServeBootAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	var out bytes.Buffer
	var errw syncBuffer
	go func() {
		done <- run(ctx, []string{"serve", "-listen", "127.0.0.1:0",
			"-trials", "5", "-drain", "5s", "-store", t.TempDir()}, &out, &errw)
	}()
	// Wait for the bind log line, then trigger shutdown.
	deadline := time.After(10 * time.Second)
	for !strings.Contains(errw.String(), "serving on") {
		select {
		case err := <-done:
			t.Fatalf("serve exited early: %v\nstderr: %s", err, errw.String())
		case <-deadline:
			t.Fatalf("server never bound\nstderr: %s", errw.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve shutdown: %v\nstderr: %s", err, errw.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("serve did not drain\nstderr: %s", errw.String())
	}
	if !strings.Contains(errw.String(), "drained cleanly") {
		t.Fatalf("no clean-drain log\nstderr: %s", errw.String())
	}
}
