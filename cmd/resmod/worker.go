package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"resmod/internal/dist"
)

// workerOptions are the worker subcommand's flags.
type workerOptions struct {
	coordinator     string
	listen          string
	advertise       string
	name            string
	campaignWorkers int
	heartbeat       time.Duration
	pprofAddr       string
	tf              telFlags
}

func (o workerOptions) validate() error {
	if o.coordinator == "" {
		return fmt.Errorf("-coordinator URL is required")
	}
	if !strings.HasPrefix(o.coordinator, "http://") && !strings.HasPrefix(o.coordinator, "https://") {
		return fmt.Errorf("-coordinator %q: want an http:// or https:// URL", o.coordinator)
	}
	if err := validListenAddr("-listen", o.listen); err != nil {
		return err
	}
	if o.campaignWorkers < 0 {
		return fmt.Errorf("-campaign-workers must be non-negative, got %d", o.campaignWorkers)
	}
	if o.heartbeat <= 0 {
		return fmt.Errorf("-heartbeat must be positive, got %v", o.heartbeat)
	}
	if o.pprofAddr != "" {
		if err := validListenAddr("-pprof-addr", o.pprofAddr); err != nil {
			return err
		}
	}
	return nil
}

// doWorker runs a distributed execution node until ctx is canceled: it
// registers with the coordinator, heartbeats, and executes trial-range
// shards dispatched to it through the local faultsim engine.  All app
// registration happens at import time, so a worker can execute any
// campaign the coordinator can name.
func doWorker(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	fs.SetOutput(errw)
	var o workerOptions
	fs.StringVar(&o.coordinator, "coordinator", "", "coordinator base `URL` (e.g. http://127.0.0.1:8080)")
	fs.StringVar(&o.listen, "listen", "127.0.0.1:0", "host:port to bind the shard endpoint")
	fs.StringVar(&o.advertise, "advertise", "",
		"`URL` the coordinator dials back (default http://<bound address>)")
	fs.StringVar(&o.name, "name", "", "worker label in /v1/workers (default: bound address)")
	fs.IntVar(&o.campaignWorkers, "campaign-workers", 0,
		"trial-level concurrency per shard (default GOMAXPROCS)")
	fs.DurationVar(&o.heartbeat, "heartbeat", dist.DefaultHeartbeatEvery,
		"heartbeat period to the coordinator")
	fs.StringVar(&o.pprofAddr, "pprof-addr", "", "host:port for a net/http/pprof listener (empty: disabled)")
	o.tf.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("worker: unexpected arguments %v", fs.Args())
	}
	if err := o.validate(); err != nil {
		return fmt.Errorf("worker: %w", err)
	}

	w, err := dist.NewWorker(dist.WorkerConfig{
		Coordinator:    o.coordinator,
		Listen:         o.listen,
		Advertise:      o.advertise,
		Name:           o.name,
		Workers:        o.campaignWorkers,
		HeartbeatEvery: o.heartbeat,
	})
	if err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	rt := o.tf.setup(errw)
	stopPprof, err := startPprof(o.pprofAddr, rt.tel.Logger())
	if err != nil {
		rt.render.stop()
		return fmt.Errorf("worker: %w", err)
	}
	defer stopPprof()
	tctx, root := rt.context(ctx, "resmod worker")
	err = w.Run(tctx)
	root.End()
	if ferr := rt.finish(errw); ferr != nil && err == nil {
		err = ferr
	}
	return err
}
