package main

import (
	"fmt"
	"io"
	"math"

	"resmod/internal/analysis"
	"resmod/internal/apps"
	"resmod/internal/exper"
	"resmod/internal/faultsim"
	"resmod/internal/fpe"
	"resmod/internal/stats"
)

// doAblate runs the sensitivity/ablation studies behind the paper's design
// choices: bit-position severity, instruction-kind sensitivity (paper §2),
// injection-phase sensitivity, and fault-pattern comparison.
func doAblate(o options, out io.Writer) error {
	app, err := apps.Lookup(o.app)
	if err != nil {
		return err
	}
	cfg := analysis.Config{
		App: app, Class: o.class, Procs: o.small, Trials: o.trials,
		Seed: o.seed, Workers: o.workers,
	}
	fmt.Fprintf(out, "== ablation studies: %s, %d ranks, %d tests/point ==\n",
		app.Name(), o.small, o.trials)

	bits, err := analysis.BitSweep(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "bit-position sensitivity:")
	for _, p := range bits {
		lo, hi := p.Rates.SuccessInterval()
		fmt.Fprintf(out, "  %-14s success=%5.1f%%  (95%% CI %.1f-%.1f%%)  sdc=%5.1f%%\n",
			p.Band.Name, 100*p.Rates.Success, 100*lo, 100*hi, 100*p.Rates.SDC)
	}

	kinds, err := analysis.KindSweep(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "instruction-kind sensitivity:")
	for _, p := range kinds {
		fmt.Fprintf(out, "  %-14s success=%5.1f%%  sdc=%5.1f%%\n",
			p.Name, 100*p.Rates.Success, 100*p.Rates.SDC)
	}

	phases, err := analysis.PhaseSweep(cfg, 4)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "injection-phase sensitivity:")
	for _, p := range phases {
		fmt.Fprintf(out, "  window %.2f-%.2f  success=%5.1f%%  sdc=%5.1f%%\n",
			p.Window[0], p.Window[1], 100*p.Rates.Success, 100*p.Rates.SDC)
	}

	patterns, err := analysis.PatternSweep(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "fault-pattern sensitivity:")
	for _, p := range patterns {
		fmt.Fprintf(out, "  %-14s success=%5.1f%%  sdc=%5.1f%%  failure=%.1f%%\n",
			p.Pattern, 100*p.Rates.Success, 100*p.Rates.SDC, 100*p.Rates.Failure)
	}

	if o.small > 1 {
		tols, err := analysis.TolSweep(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "contamination-threshold sensitivity:")
		for _, p := range tols {
			label := fmt.Sprintf("%.0e", p.Tol)
			if p.Tol < 0 {
				label = "bit-exact"
			}
			fmt.Fprintf(out, "  tol %-10s mean contaminated=%.2f  all-ranks fraction=%.1f%%\n",
				label, p.MeanContaminated, 100*p.FullFraction)
		}
	}
	return nil
}

// doTrace runs single fault injection tests verbosely, printing where each
// error landed at the application level (the capability the paper gets
// from its enhanced F-SEFI) and which ranks it contaminated.
func doTrace(o options, out io.Writer) error {
	app, err := apps.Lookup(o.app)
	if err != nil {
		return err
	}
	class := o.class
	if class == "" {
		class = app.DefaultClass()
	}
	golden, err := faultsim.ComputeGolden(app, class, o.small, apps.DefaultTimeout)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "== trace: %s/%s on %d ranks, %d injected tests ==\n",
		app.Name(), class, o.small, o.trials)
	fmt.Fprintf(out, "golden: %d FP ops (%.2f%% parallel-unique), check=%v\n\n",
		golden.TotalCounts().Total(), 100*golden.UniqueFraction(), golden.Check)

	rng := stats.NewRNG(o.seed)
	for t := 0; t < o.trials; t++ {
		trng := rng.Split(uint64(t))
		target := trng.Intn(o.small)
		plan, err := fpe.DrawAnyRegionWith(trng, golden.KindCounts[target], fpe.DrawOpts{})
		if err != nil {
			return err
		}
		res := apps.Execute(app, class, o.small, map[int][]fpe.Injection{target: plan},
			apps.DefaultTimeout)
		fmt.Fprintf(out, "test %d: rank %d, %s op #%d, bit %d\n",
			t, target, plan[0].Class, plan[0].Index, plan[0].Bit)
		if res.Err != nil {
			fmt.Fprintf(out, "  outcome: FAILURE (%v)\n\n", res.Err)
			continue
		}
		for _, rec := range res.Ctxs[target].Records() {
			region := rec.Region
			if region == "" {
				region = "main-loop"
			}
			fmt.Fprintf(out, "  fired in %s (%s): %v -> %v\n",
				region, rec.Op, rec.Before, rec.After)
		}
		var contaminated []int
		for r := 0; r < o.small; r++ {
			if !bitEqualStates(res.Outputs[r].State, golden.States[r]) {
				contaminated = append(contaminated, r)
			}
		}
		outcome := "SUCCESS"
		if !app.Verify(golden.Check, res.Outputs[0].Check) {
			outcome = "SDC"
		}
		fmt.Fprintf(out, "  outcome: %s, contaminated ranks: %v, check=%v\n\n",
			outcome, contaminated, res.Outputs[0].Check)
	}
	return nil
}

func bitEqualStates(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// doBaselines compares the model against the naive serial-only and
// small-only predictors.
func doBaselines(s *exper.Session, out io.Writer, names []string, o options) error {
	rows, err := exper.Baselines(s, names, o.small, o.large)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "== model vs naive baselines ==")
	exper.RenderBaselines(out, rows)
	return nil
}

// doModelAblate disables model ingredients one at a time.
func doModelAblate(s *exper.Session, out io.Writer, o options) error {
	ab, err := exper.AblateModel(s, o.app, o.class, o.small, o.large)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "== model ablation: %s, predict %d from serial+%d ==\n",
		ab.Bench, o.large, o.small)
	fmt.Fprintf(out, "measured:            %5.1f%%\n", 100*ab.Measured)
	fmt.Fprintf(out, "full model:          %5.1f%% (tuning active: %v)\n", 100*ab.Full, ab.Tuned)
	fmt.Fprintf(out, "without alpha tune:  %5.1f%%\n", 100*ab.NoTuning)
	fmt.Fprintf(out, "without unique term: %5.1f%%\n", 100*ab.NoUnique)
	return nil
}

// doStability checks the paper's statistical protocol: the success rate
// must stabilize well before the full trial budget (the paper observes
// stability after the first 1000 of 4000 tests).
func doStability(s *exper.Session, o options, out io.Writer) error {
	app, err := apps.Lookup(o.app)
	if err != nil {
		return err
	}
	class := o.class
	if class == "" {
		class = app.DefaultClass()
	}
	golden, err := faultsim.ComputeGolden(app, class, o.small, apps.DefaultTimeout)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "== stability: %s/%s on %d ranks ==\n", app.Name(), class, o.small)
	fmt.Fprintf(out, "%-8s %-10s %s\n", "trials", "success", "95% CI")
	var prev float64
	for _, n := range []int{o.trials / 8, o.trials / 4, o.trials / 2, o.trials} {
		if n < 1 {
			continue
		}
		sum, err := faultsim.RunAgainst(faultsim.Campaign{
			App: app, Class: class, Procs: o.small, Trials: n, Seed: o.seed,
			Workers: o.workers,
		}, golden)
		if err != nil {
			return err
		}
		lo, hi := sum.Rates.SuccessInterval()
		fmt.Fprintf(out, "%-8d %-10.1f %.1f%% - %.1f%%   (delta %.1f%%)\n",
			n, 100*sum.Rates.Success, 100*lo, 100*hi, 100*(sum.Rates.Success-prev))
		prev = sum.Rates.Success
	}
	return nil
}

// doScaleSweep predicts a ladder of target scales from one small scale.
func doScaleSweep(s *exper.Session, out io.Writer, o options) error {
	var larges []int
	for l := o.small * 2; l <= o.large; l *= 2 {
		larges = append(larges, l)
	}
	rows, err := exper.ScaleSweep(s, o.app, o.class, o.small, larges)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "== extrapolation-depth sweep ==")
	exper.RenderScaleSweep(out, rows)
	return nil
}

// doAdvise prints protection-placement advice for one benchmark.
func doAdvise(o options, out io.Writer) error {
	app, err := apps.Lookup(o.app)
	if err != nil {
		return err
	}
	adv, err := analysis.Advise(analysis.Config{
		App: app, Class: o.class, Procs: o.small, Trials: o.trials,
		Seed: o.seed, Workers: o.workers,
	}, 4)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "== protection advice: %s, %d ranks ==\n", app.Name(), o.small)
	adv.Render(out)
	return nil
}
