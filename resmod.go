package resmod

import (
	"context"

	"resmod/internal/apps"
	"resmod/internal/core"
	"resmod/internal/exper"
	"resmod/internal/faultsim"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
	"resmod/internal/stats"

	// Register the paper's six benchmarks and the extension benchmarks
	// (EP, CG2D, SP).
	_ "resmod/internal/apps/cg"
	_ "resmod/internal/apps/cg2d"
	_ "resmod/internal/apps/ep"
	_ "resmod/internal/apps/ft"
	_ "resmod/internal/apps/lu"
	_ "resmod/internal/apps/mg"
	_ "resmod/internal/apps/minife"
	_ "resmod/internal/apps/pennant"
	_ "resmod/internal/apps/sp"
)

// ---- applications ---------------------------------------------------------

// App is a benchmark application: the unit fault injection campaigns run
// against.  Implement it (and RegisterApp it) to study your own code.
type App = apps.App

// RankOutput is an application rank's final state and verification values.
type RankOutput = apps.RankOutput

// LookupApp returns a registered application ("CG", "FT", "MG", "LU",
// "MiniFE", "PENNANT", or any RegisterApp-ed name).
func LookupApp(name string) (App, error) { return apps.Lookup(name) }

// AppNames lists the registered application names.
func AppNames() []string { return apps.Names() }

// RegisterApp adds a user application to the registry.
func RegisterApp(a App) { apps.Register(a) }

// VerifyRel is the common checker shape: finite values within a relative
// tolerance of the golden values.
func VerifyRel(golden, check []float64, tol float64) bool {
	return apps.VerifyRel(golden, check, tol)
}

// ---- fault injection substrate ---------------------------------------------

// FPCtx is the instrumented floating-point context applications compute
// through; one per rank.
type FPCtx = fpe.Ctx

// Injection is one planned single-bit flip.
type Injection = fpe.Injection

// Region classes for computation annotation (paper Observation 1).
const (
	RegionCommon = fpe.Common
	RegionUnique = fpe.Unique
)

// FlipBit returns f with one bit of its IEEE-754 representation inverted.
func FlipBit(f float64, bit uint) float64 { return fpe.FlipBit(f, bit) }

// Pattern selects a campaign's fault shape.
type Pattern = fpe.Pattern

// The supported fault patterns (Campaign.Pattern).
const (
	PatternSingleBit  = fpe.SingleBit
	PatternDoubleBit  = fpe.DoubleBit
	PatternBurst4     = fpe.Burst4
	PatternWordRandom = fpe.WordRandom
)

// Operation-kind masks for Campaign.KindMask.
const (
	// KindAdd restricts injection to the adder datapath (add and sub).
	KindAdd uint8 = 1<<uint(fpe.OpAdd) | 1<<uint(fpe.OpSub)
	// KindMul restricts injection to multiplications.
	KindMul uint8 = 1 << uint(fpe.OpMul)
)

// ---- message-passing substrate ----------------------------------------------

// Comm is a rank's communicator handle in the simulated MPI runtime.
type Comm = simmpi.Comm

// Reduction operators.
const (
	OpSum  = simmpi.OpSum
	OpMax  = simmpi.OpMax
	OpMin  = simmpi.OpMin
	OpProd = simmpi.OpProd
)

// ---- campaigns ---------------------------------------------------------------

// Campaign is one fault injection deployment (paper §2).
type Campaign = faultsim.Campaign

// Summary is a deployment's fault injection result.
type Summary = faultsim.Summary

// Golden is a fault-free reference execution.
type Golden = faultsim.Golden

// Rates is a fault injection result: Success/SDC/Failure fractions.
type Rates = stats.Rates

// Hist is a contamination histogram over ranks.
type Hist = stats.Hist

// Region modes for campaigns.
const (
	AnyRegion  = faultsim.AnyRegion
	CommonOnly = faultsim.CommonOnly
	UniqueOnly = faultsim.UniqueOnly
)

// Outcomes of individual tests.
const (
	Success = faultsim.Success
	SDC     = faultsim.SDC
	Failure = faultsim.Failure
)

// RunCampaign executes a fault injection deployment.
func RunCampaign(c Campaign) (*Summary, error) { return faultsim.Run(c) }

// RunCampaignCtx executes a deployment under a context: cancellation (or
// an exhausted Campaign.Budget) stops the trial workers promptly and
// returns the partial Summary flagged Interrupted.  With
// Campaign.Checkpoint set, the partial tallies are persisted and a later
// run with Campaign.Resume continues bit-identically.
func RunCampaignCtx(ctx context.Context, c Campaign) (*Summary, error) {
	return faultsim.RunCtx(ctx, c)
}

// CampaignCheckpoint is the resumable snapshot of a partially executed
// deployment (see Campaign.Checkpoint / Campaign.Resume).
type CampaignCheckpoint = faultsim.Checkpoint

// LoadCampaignCheckpoint reads a snapshot written by a checkpointing
// campaign — for inspecting partial progress out of band.
func LoadCampaignCheckpoint(path string) (*CampaignCheckpoint, error) {
	return faultsim.LoadCheckpoint(path)
}

// ComputeGolden runs the fault-free execution of (app, class, procs).
func ComputeGolden(app App, class string, procs int) (*Golden, error) {
	return faultsim.ComputeGolden(app, class, procs, apps.DefaultTimeout)
}

// ---- the model -----------------------------------------------------------------

// ModelInputs gathers the model's inputs (paper §4.2).
type ModelInputs = core.Inputs

// Prediction is the model's output.
type Prediction = core.Prediction

// SerialCurve holds sampled serial multi-error fault injection results.
type SerialCurve = core.SerialCurve

// Predict evaluates the paper's model (Eqs. 1–8).
func Predict(in ModelInputs) (*Prediction, error) { return core.Predict(in) }

// SampleXs returns the serial sampling points for target scale p with s
// samples (paper §4.2: 1, 2p/s, ..., p).
func SampleXs(p, s int) ([]int, error) { return core.SampleXs(p, s) }

// NewSerialCurve builds a validated serial curve.
func NewSerialCurve(p int, xs []int, rates []Rates) (*SerialCurve, error) {
	return core.NewSerialCurve(p, xs, rates)
}

// PropagationSimilarity is the paper's Table 2 cosine metric between a
// small-scale and a grouped large-scale contamination histogram.
func PropagationSimilarity(small, large *Hist) (float64, error) {
	return core.PropagationSimilarity(small, large)
}

// ---- evaluation drivers ----------------------------------------------------------

// Session caches golden runs and deployments across experiments.
type Session = exper.Session

// SessionConfig tunes an evaluation session.
type SessionConfig = exper.Config

// NewSession creates an evaluation session.
func NewSession(cfg SessionConfig) *Session { return exper.NewSession(cfg) }

// PredictionRow is a measured-vs-predicted row (Figures 5–7).
type PredictionRow = exper.PredictionRow

// PredictScale runs the full §4 pipeline for one benchmark: serial sampled
// deployments plus a small-scale deployment predict the fault injection
// result at the large scale, compared against the measured ground truth.
func PredictScale(s *Session, app, class string, small, large int) (*PredictionRow, error) {
	return exper.PredictOne(s, app, class, small, large)
}
